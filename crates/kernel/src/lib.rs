//! A Linux-like kernel model and discrete-event execution engine for the
//! Agave Android-stack simulator.
//!
//! This crate plays the role gem5 + the modified Linux 2.6.35 kernel played
//! in the paper: it hosts simulated [`Process`]es and [`Thread`]s, runs their
//! behaviour as deterministic message-driven [`Actor`]s, and routes every
//! modeled memory access through a charging [`Ctx`] that attributes it to a
//! (process, thread, region, kind) tuple in the [`agave_trace::Tracer`].
//!
//! # Execution model
//!
//! The engine is a discrete-event simulator in the spirit of gem5's atomic
//! CPU: one reference per tick, no caches, no timing beyond event order.
//! Threads are actors with mailboxes; handlers run to completion and may
//! send messages, arm timers, spawn threads/processes, or make synchronous
//! nested calls into other threads (the substrate the Binder model builds
//! on). Simulated time advances by one tick per charged reference and jumps
//! forward across idle gaps, charging the `swapper` idle thread on the way —
//! which is why `swapper` shows up in the paper's process breakdowns.
//!
//! # Example
//!
//! ```
//! use agave_kernel::{Actor, Ctx, Kernel, Message};
//!
//! struct Counter(u64);
//! impl Actor for Counter {
//!     fn on_message(&mut self, cx: &mut Ctx<'_>, _msg: Message) {
//!         let lib = cx.well_known().libc;
//!         cx.call_lib(lib, 100); // 100 instruction fetches from libc.so
//!         self.0 += 1;
//!     }
//! }
//!
//! let mut kernel = Kernel::new();
//! let pid = kernel.spawn_process("demo");
//! let tid = kernel.spawn_thread(pid, "main", Box::new(Counter(0)));
//! kernel.send(tid, Message::new(1));
//! kernel.run_to_idle();
//! let summary = kernel.tracer().summarize("demo");
//! assert_eq!(summary.instr_by_region["libc.so"], 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actor;
mod ctx;
mod kernel;
mod message;
mod process;
mod regions;
mod shm;
mod vfs;

pub use actor::Actor;
pub use ctx::Ctx;
pub use kernel::{Kernel, TICKS_PER_MS};
pub use message::{Message, Payload};
pub use process::{LibHandle, Process, Thread};
pub use regions::WellKnown;
pub use shm::ShmId;
pub use vfs::Vfs;

// Re-export the identifiers the rest of the stack uses constantly.
pub use agave_mem::{Addr, Allocation, AllocationKind, Perms};
pub use agave_trace::{NameId, Pid, RefKind, Tid};
