//! Simulated processes and threads.

use crate::actor::Actor;
use crate::message::Message;
use agave_mem::{Addr, AddressSpace, Allocation, Malloc, Perms};
use agave_trace::{NameId, Pid, Tid};
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// Handle to a library mapped into a process: the region name references to
/// its text/data are charged against, plus the mapped base addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LibHandle {
    /// Region name for charging.
    pub name: NameId,
    /// Base of the text mapping.
    pub text_base: Addr,
    /// Base of the data mapping.
    pub data_base: Addr,
}

/// A simulated process: an address space, a C allocator, mapped libraries
/// and member threads.
pub struct Process {
    pid: Pid,
    name: String,
    /// The process's virtual address space. Public: the framework layers
    /// set up mappings directly during process construction.
    pub space: AddressSpace,
    malloc: Malloc,
    libs: HashMap<String, LibHandle>,
    threads: Vec<Tid>,
    default_code: NameId,
    alive: bool,
}

impl fmt::Debug for Process {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Process")
            .field("pid", &self.pid)
            .field("name", &self.name)
            .field("threads", &self.threads.len())
            .field("libs", &self.libs.len())
            .field("alive", &self.alive)
            .finish()
    }
}

impl Process {
    pub(crate) fn new(
        pid: Pid,
        name: &str,
        heap: NameId,
        anonymous: NameId,
        app_binary: NameId,
        default_code: NameId,
    ) -> Self {
        let mut space = AddressSpace::new();
        let malloc = Malloc::new(&mut space, heap, anonymous);
        // Map the main executable image at the text base.
        let layout = space.layout();
        space.map_fixed(
            Addr::new(layout.text_base),
            512 * 1024,
            app_binary,
            Perms::RX,
        );
        Process {
            pid,
            name: name.to_owned(),
            space,
            malloc,
            libs: HashMap::new(),
            threads: Vec::new(),
            default_code,
            alive: true,
        }
    }

    /// Forks a copy of this process (zygote-style): same mappings and bytes,
    /// fresh pid/name, no threads.
    pub(crate) fn fork_as(&self, pid: Pid, name: &str) -> Self {
        Process {
            pid,
            name: name.to_owned(),
            space: self.space.clone(),
            malloc: Malloc::resume_from(&self.malloc),
            libs: self.libs.clone(),
            threads: Vec::new(),
            default_code: self.default_code,
            alive: true,
        }
    }

    /// This process's pid.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Process name as shown in the paper's process figures.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether the process is still running.
    pub fn is_alive(&self) -> bool {
        self.alive
    }

    pub(crate) fn kill(&mut self) {
        self.alive = false;
    }

    /// Tids of member threads, in spawn order.
    pub fn threads(&self) -> &[Tid] {
        &self.threads
    }

    pub(crate) fn add_thread(&mut self, tid: Tid) {
        self.threads.push(tid);
    }

    /// Default code region new threads of this process charge against.
    pub fn default_code(&self) -> NameId {
        self.default_code
    }

    /// Maps `name` as a shared library (text + data VMAs) and returns its
    /// handle; idempotent per name.
    pub fn map_lib(
        &mut self,
        name: &str,
        name_id: NameId,
        text_len: u64,
        data_len: u64,
    ) -> LibHandle {
        if let Some(&h) = self.libs.get(name) {
            return h;
        }
        let text_base = self.space.mmap(text_len.max(1), name_id, Perms::RX);
        let data_base = self.space.mmap(data_len.max(1), name_id, Perms::RW);
        let handle = LibHandle {
            name: name_id,
            text_base,
            data_base,
        };
        self.libs.insert(name.to_owned(), handle);
        handle
    }

    /// Looks up a previously mapped library by name.
    pub fn lib(&self, name: &str) -> Option<LibHandle> {
        self.libs.get(name).copied()
    }

    /// Number of mapped libraries.
    pub fn lib_count(&self) -> usize {
        self.libs.len()
    }

    /// Allocates from the process's C allocator.
    pub fn malloc_alloc(&mut self, size: u64) -> Allocation {
        self.malloc.alloc(&mut self.space, size)
    }

    /// Frees a block allocated with [`Process::malloc_alloc`].
    pub fn malloc_free(&mut self, allocation: Allocation) {
        self.malloc.free(&mut self.space, allocation);
    }
}

/// A simulated thread: identity, mailbox, and (while alive) its actor.
pub struct Thread {
    tid: Tid,
    pid: Pid,
    name: String,
    pub(crate) mailbox: VecDeque<Message>,
    pub(crate) queued: bool,
    pub(crate) actor: Option<Box<dyn Actor>>,
    pub(crate) default_code: NameId,
    /// Ticks of CPU time this thread has been charged (1 ref = 1 tick).
    pub(crate) cpu_ticks: u64,
    alive: bool,
}

impl fmt::Debug for Thread {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Thread")
            .field("tid", &self.tid)
            .field("pid", &self.pid)
            .field("name", &self.name)
            .field("mailbox", &self.mailbox.len())
            .field("alive", &self.alive)
            .finish()
    }
}

impl Thread {
    pub(crate) fn new(
        tid: Tid,
        pid: Pid,
        name: &str,
        default_code: NameId,
        actor: Box<dyn Actor>,
    ) -> Self {
        Thread {
            tid,
            pid,
            name: name.to_owned(),
            mailbox: VecDeque::new(),
            queued: false,
            actor: Some(actor),
            default_code,
            cpu_ticks: 0,
            alive: true,
        }
    }

    /// CPU ticks this thread has consumed (one modeled reference = one
    /// tick on the atomic CPU).
    pub fn cpu_ticks(&self) -> u64 {
        self.cpu_ticks
    }

    /// This thread's tid.
    pub fn tid(&self) -> Tid {
        self.tid
    }

    /// Owning process.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Concrete thread name (before Table-I canonicalization).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether the thread can still receive messages.
    pub fn is_alive(&self) -> bool {
        self.alive
    }

    pub(crate) fn kill(&mut self) {
        self.alive = false;
        self.actor = None;
        self.mailbox.clear();
    }
}
