//! The kernel: process/thread tables, event queue, and the dispatch loop.

use crate::actor::{Actor, Inert};
use crate::ctx::Ctx;
use crate::message::Message;
use crate::process::{LibHandle, Process, Thread};
use crate::regions::WellKnown;
use crate::shm::{ShmId, ShmStore};
use crate::vfs::Vfs;
use agave_trace::{NameId, Pid, RefKind, SharedSink, Tid, Tracer};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Simulated ticks per millisecond (a 100 MHz atomic CPU: one reference per
/// tick, matching the paper's cache-less atomic model).
pub const TICKS_PER_MS: u64 = 100_000;

/// One idle (swapper) instruction fetch is charged per this many ticks of
/// idle time, keeping `swapper` visible in the process figures without
/// letting it dominate.
const IDLE_DIVISOR: u64 = 2048;

/// Kernel-side cost of servicing one uncached page of file I/O, charged to
/// the `ata_sff/0` storage thread (fetches, reads, writes).
const ATA_PAGE_COST: (u64, u64, u64) = (300, 512, 512);

struct Ev {
    time: u64,
    seq: u64,
    tid: Tid,
    msg: Message,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first ordering.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// The simulated kernel and discrete-event engine.
///
/// See the [crate docs](crate) for the execution model and an end-to-end
/// example.
pub struct Kernel {
    pub(crate) tracer: Tracer,
    pub(crate) wk: WellKnown,
    pub(crate) procs: Vec<Process>,
    pub(crate) threads: Vec<Thread>,
    pub(crate) runq: VecDeque<Tid>,
    events: BinaryHeap<Ev>,
    seq: u64,
    pub(crate) now: u64,
    pub(crate) vfs: Vfs,
    pub(crate) shm: ShmStore,
    swapper: Option<(Pid, Tid)>,
    ata: Option<(Pid, Tid)>,
    io_pages: u64,
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("now", &self.now)
            .field("processes", &self.procs.len())
            .field("threads", &self.threads.len())
            .field("pending_events", &self.events.len())
            .finish()
    }
}

impl Default for Kernel {
    fn default() -> Self {
        Self::new()
    }
}

impl Kernel {
    /// Creates a kernel with the `swapper` idle process and the `ata_sff/0`
    /// storage thread already running (they exist on any booted Linux).
    pub fn new() -> Self {
        let mut tracer = Tracer::new();
        let wk = WellKnown::intern(&mut tracer);
        let mut kernel = Kernel {
            tracer,
            wk,
            procs: Vec::new(),
            threads: Vec::new(),
            runq: VecDeque::new(),
            events: BinaryHeap::new(),
            seq: 0,
            now: 0,
            vfs: Vfs::new(),
            shm: ShmStore::default(),
            swapper: None,
            ata: None,
            io_pages: 0,
        };
        kernel.swapper = Some(kernel.spawn_kernel_thread("swapper"));
        kernel.ata = Some(kernel.spawn_kernel_thread("ata_sff/0"));
        kernel
    }

    /// The well-known region names.
    pub fn well_known(&self) -> WellKnown {
        self.wk
    }

    /// Read access to the tracer (for summaries).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Mutable access to the tracer (for interning / direct charges).
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// Registers an observer on the classified reference stream.
    ///
    /// Every subsequent charge is broadcast to `sink` as one or more
    /// [`agave_trace::Reference`] blocks; keep a clone of the `Rc` to read
    /// the consumer's state back after the run.
    pub fn attach_sink(&mut self, sink: SharedSink) {
        self.tracer.add_sink(sink);
    }

    /// Interns a region name.
    pub fn intern_region(&mut self, name: &str) -> NameId {
        self.tracer.intern_region(name)
    }

    /// Current simulated time in ticks.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The idle process/thread.
    pub fn swapper(&self) -> (Pid, Tid) {
        self.swapper.expect("swapper spawned in Kernel::new")
    }

    /// The storage kernel thread the paper's SPEC runs compete with.
    pub fn ata(&self) -> (Pid, Tid) {
        self.ata.expect("ata_sff/0 spawned in Kernel::new")
    }

    /// The virtual filesystem.
    pub fn vfs(&self) -> &Vfs {
        &self.vfs
    }

    /// Mutable filesystem access (to register benchmark inputs).
    pub fn vfs_mut(&mut self) -> &mut Vfs {
        &mut self.vfs
    }

    /// Total 4 KiB pages of device I/O performed so far.
    pub fn io_pages(&self) -> u64 {
        self.io_pages
    }

    // ---- process / thread management -------------------------------------

    /// Spawns a user process whose threads default to charging the
    /// `app binary` code region.
    pub fn spawn_process(&mut self, name: &str) -> Pid {
        self.spawn_process_with_code(name, self.wk.app_binary)
    }

    /// Spawns a user process with an explicit default code region.
    pub fn spawn_process_with_code(&mut self, name: &str, default_code: NameId) -> Pid {
        let pid = self.tracer.register_process(name);
        debug_assert_eq!(pid.as_u32() as usize, self.procs.len());
        self.procs.push(Process::new(
            pid,
            name,
            self.wk.heap,
            self.wk.anonymous,
            self.wk.app_binary,
            default_code,
        ));
        pid
    }

    /// Forks `parent` zygote-style: the child inherits the parent's
    /// mappings and memory contents but starts with no threads.
    pub fn fork_process(&mut self, parent: Pid, name: &str) -> Pid {
        let pid = self.tracer.register_process(name);
        debug_assert_eq!(pid.as_u32() as usize, self.procs.len());
        let child = self.procs[parent.as_u32() as usize].fork_as(pid, name);
        self.procs.push(child);
        pid
    }

    /// Spawns a kernel thread, modeled as a single-thread process charging
    /// the `OS kernel` region (kernel threads appear as processes in the
    /// paper's figures).
    pub fn spawn_kernel_thread(&mut self, name: &str) -> (Pid, Tid) {
        let pid = self.spawn_process_with_code(name, self.wk.os_kernel);
        let tid = self.spawn_thread(pid, name, Box::new(Inert));
        (pid, tid)
    }

    /// Spawns a thread in `pid` using the process's default code region.
    pub fn spawn_thread(&mut self, pid: Pid, name: &str, actor: Box<dyn Actor>) -> Tid {
        let code = self.procs[pid.as_u32() as usize].default_code();
        self.spawn_thread_in(pid, name, code, actor)
    }

    /// Spawns a thread with an explicit default code region (e.g. a Dalvik
    /// thread whose home is `libdvm.so`).
    pub fn spawn_thread_in(
        &mut self,
        pid: Pid,
        name: &str,
        default_code: NameId,
        actor: Box<dyn Actor>,
    ) -> Tid {
        let tid = self.tracer.register_thread(pid, name);
        debug_assert_eq!(tid.as_u32() as usize, self.threads.len());
        let proc = &mut self.procs[pid.as_u32() as usize];
        proc.space.map_stack(self.wk.stack);
        proc.add_thread(tid);
        self.threads
            .push(Thread::new(tid, pid, name, default_code, actor));
        self.deliver(tid, Message::start());
        tid
    }

    /// Maps a library into `pid` (text + data VMAs named `name`).
    pub fn map_lib(&mut self, pid: Pid, name: &str, text_len: u64, data_len: u64) -> LibHandle {
        let name_id = self.tracer.intern_region(name);
        self.procs[pid.as_u32() as usize].map_lib(name, name_id, text_len, data_len)
    }

    /// Shared access to a process.
    pub fn process(&self, pid: Pid) -> &Process {
        &self.procs[pid.as_u32() as usize]
    }

    /// Mutable access to a process.
    pub fn process_mut(&mut self, pid: Pid) -> &mut Process {
        &mut self.procs[pid.as_u32() as usize]
    }

    /// Shared access to a thread.
    pub fn thread(&self, tid: Tid) -> &Thread {
        &self.threads[tid.as_u32() as usize]
    }

    /// Number of processes ever spawned.
    pub fn process_count(&self) -> usize {
        self.procs.len()
    }

    /// Number of threads ever spawned.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    // ---- messaging --------------------------------------------------------

    /// Enqueues `msg` for `tid` immediately.
    pub fn send(&mut self, tid: Tid, msg: Message) {
        self.deliver(tid, msg);
    }

    /// Schedules `msg` for delivery to `tid` after `delay` ticks.
    pub fn send_after(&mut self, delay: u64, tid: Tid, msg: Message) {
        let time = self.now + delay;
        self.seq += 1;
        self.events.push(Ev {
            time,
            seq: self.seq,
            tid,
            msg,
        });
    }

    pub(crate) fn deliver(&mut self, tid: Tid, msg: Message) {
        let thread = &mut self.threads[tid.as_u32() as usize];
        if !thread.is_alive() {
            return;
        }
        thread.mailbox.push_back(msg);
        if !thread.queued {
            thread.queued = true;
            self.runq.push_back(tid);
        }
    }

    // ---- run loop ----------------------------------------------------------

    /// Runs until no runnable threads and no pending events remain.
    pub fn run_to_idle(&mut self) {
        loop {
            while self.dispatch_one() {}
            if !self.pop_event_and_deliver(u64::MAX) {
                break;
            }
        }
    }

    /// Runs for `ticks` simulated ticks from the current time.
    pub fn run_for(&mut self, ticks: u64) {
        let deadline = self.now.saturating_add(ticks);
        self.run_until(deadline);
    }

    /// Runs until simulated time reaches at least `deadline` (or the
    /// simulation goes idle first). Handlers are never preempted, so time
    /// may overshoot by one handler's worth of work.
    pub fn run_until(&mut self, deadline: u64) {
        while self.now < deadline {
            if self.dispatch_one() {
                continue;
            }
            if !self.pop_event_and_deliver(deadline) {
                // Idle until the deadline: only the swapper runs.
                self.idle_advance(deadline);
                break;
            }
        }
    }

    /// Dispatches one mailbox message; returns false if nothing is runnable.
    fn dispatch_one(&mut self) -> bool {
        let Some(tid) = self.runq.pop_front() else {
            return false;
        };
        let thread = &mut self.threads[tid.as_u32() as usize];
        thread.queued = false;
        if !thread.is_alive() {
            return true;
        }
        let Some(msg) = thread.mailbox.pop_front() else {
            return true;
        };
        if !thread.mailbox.is_empty() {
            thread.queued = true;
            self.runq.push_back(tid);
        }
        self.run_handler(tid, msg);
        true
    }

    fn run_handler(&mut self, tid: Tid, msg: Message) {
        let (pid, code, mut actor) = {
            let thread = &mut self.threads[tid.as_u32() as usize];
            let Some(actor) = thread.actor.take() else {
                // Actor gone (thread exited mid-queue); drop the message.
                return;
            };
            (thread.pid(), thread.default_code, actor)
        };
        let is_start = msg.is_start();
        {
            let mut cx = Ctx::new(self, pid, tid, code);
            if is_start {
                actor.on_start(&mut cx);
            } else {
                actor.on_message(&mut cx, msg);
            }
        }
        let thread = &mut self.threads[tid.as_u32() as usize];
        if thread.is_alive() {
            thread.actor = Some(actor);
        }
    }

    /// Pops the earliest event if its time is ≤ `deadline`; returns whether
    /// an event was delivered.
    fn pop_event_and_deliver(&mut self, deadline: u64) -> bool {
        match self.events.peek() {
            Some(ev) if ev.time <= deadline => {
                let ev = self.events.pop().expect("peeked event");
                if ev.time > self.now {
                    self.idle_advance(ev.time);
                }
                self.deliver(ev.tid, ev.msg);
                true
            }
            _ => false,
        }
    }

    /// Jumps time forward to `target`, charging the idle loop to `swapper`.
    fn idle_advance(&mut self, target: u64) {
        debug_assert!(target >= self.now);
        let gap = target - self.now;
        let idle_refs = gap / IDLE_DIVISOR;
        if idle_refs > 0 {
            let (pid, tid) = self.swapper();
            self.tracer
                .charge(pid, tid, self.wk.os_kernel, RefKind::InstrFetch, idle_refs);
        }
        self.now = target;
    }

    // ---- I/O ----------------------------------------------------------------

    /// Reads file bytes with page-cache semantics, charging device I/O for
    /// uncached pages to the `ata_sff/0` thread. Returns bytes read.
    ///
    /// The caller (via [`Ctx::fs_read`]) additionally pays the syscall and
    /// copy-to-user costs in its own context.
    pub(crate) fn fs_read_charged(&mut self, path: &str, offset: u64, buf: &mut [u8]) -> usize {
        let n = self.vfs.read_at(path, offset, buf);
        if n == 0 {
            return 0;
        }
        let misses = self.vfs.touch_pages(path, offset, n as u64);
        if misses > 0 {
            self.io_pages += misses;
            let (pid, tid) = self.ata();
            let (f, r, w) = ATA_PAGE_COST;
            self.tracer
                .charge(pid, tid, self.wk.os_kernel, RefKind::InstrFetch, f * misses);
            self.tracer
                .charge(pid, tid, self.wk.os_kernel, RefKind::DataRead, r * misses);
            self.tracer
                .charge(pid, tid, self.wk.os_kernel, RefKind::DataWrite, w * misses);
        }
        n
    }

    /// Writes file bytes and bills the (asynchronous) writeback to the
    /// `ata_sff/0` thread, one charge per dirtied page.
    pub(crate) fn fs_write_charged(&mut self, path: &str, offset: u64, bytes: &[u8]) {
        self.vfs.write_at(path, offset, bytes);
        let pages = (bytes.len() as u64).div_ceil(agave_mem::PAGE_SIZE).max(1);
        self.io_pages += pages;
        let (pid, tid) = self.ata();
        let (f, r, w) = ATA_PAGE_COST;
        self.tracer
            .charge(pid, tid, self.wk.os_kernel, RefKind::InstrFetch, f * pages);
        self.tracer
            .charge(pid, tid, self.wk.os_kernel, RefKind::DataRead, r * pages);
        self.tracer
            .charge(pid, tid, self.wk.os_kernel, RefKind::DataWrite, w * pages);
    }

    // ---- shared memory -------------------------------------------------------

    /// Creates a shared segment charged against `region_name`.
    pub fn shm_create(&mut self, region_name: NameId, len: usize) -> ShmId {
        self.shm.create(region_name, len)
    }

    /// Length of a shared segment.
    pub fn shm_len(&self, id: ShmId) -> usize {
        self.shm.seg(id).data.len()
    }

    /// Uncharged read access to a shared segment's bytes (assertions,
    /// checksums — not modeled accesses).
    pub fn shm_bytes(&self, id: ShmId) -> &[u8] {
        &self.shm.seg(id).data
    }
}
