//! Shared-memory segments: gralloc buffers, the framebuffer, audio rings.
//!
//! Android shares pixel and audio buffers between processes via ashmem and
//! gralloc. The simulator models a shared segment as one canonical byte
//! buffer owned by the kernel; any thread may access it, and accesses are
//! charged to the segment's region name (`gralloc-buffer`,
//! `fb0 (frame buffer)`, …) in the accessing thread's context — exactly how
//! per-VMA attribution worked in the paper's instrumentation.

use agave_trace::NameId;
use std::fmt;

/// Handle to a shared-memory segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShmId(pub(crate) u32);

impl fmt::Display for ShmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shm#{}", self.0)
    }
}

#[derive(Debug)]
pub(crate) struct Segment {
    pub name: NameId,
    pub data: Vec<u8>,
}

/// The kernel-owned store of shared segments.
#[derive(Debug, Default)]
pub(crate) struct ShmStore {
    segs: Vec<Segment>,
}

impl ShmStore {
    pub fn create(&mut self, name: NameId, len: usize) -> ShmId {
        let id = ShmId(u32::try_from(self.segs.len()).expect("shm id overflow"));
        self.segs.push(Segment {
            name,
            data: vec![0; len],
        });
        id
    }

    pub fn seg(&self, id: ShmId) -> &Segment {
        &self.segs[id.0 as usize]
    }

    pub fn seg_mut(&mut self, id: ShmId) -> &mut Segment {
        &mut self.segs[id.0 as usize]
    }

    /// Two distinct segments borrowed mutably at once (for copies).
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn seg_pair_mut(&mut self, a: ShmId, b: ShmId) -> (&mut Segment, &mut Segment) {
        assert_ne!(a, b, "shm copy within one segment must use seg_mut");
        let (ai, bi) = (a.0 as usize, b.0 as usize);
        if ai < bi {
            let (lo, hi) = self.segs.split_at_mut(bi);
            (&mut lo[ai], &mut hi[0])
        } else {
            let (lo, hi) = self.segs.split_at_mut(ai);
            (&mut hi[0], &mut lo[bi])
        }
    }

    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.segs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agave_trace::Tracer;

    #[test]
    fn create_and_access() {
        let mut tracer = Tracer::new();
        let name = tracer.intern_region("gralloc-buffer");
        let mut store = ShmStore::default();
        let id = store.create(name, 64);
        store.seg_mut(id).data[3] = 9;
        assert_eq!(store.seg(id).data[3], 9);
        assert_eq!(store.seg(id).name, name);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn pair_borrow_both_orders() {
        let mut tracer = Tracer::new();
        let n = tracer.intern_region("x");
        let mut store = ShmStore::default();
        let a = store.create(n, 8);
        let b = store.create(n, 8);
        {
            let (sa, sb) = store.seg_pair_mut(a, b);
            sa.data[0] = 1;
            sb.data[0] = 2;
        }
        let (sb, sa) = store.seg_pair_mut(b, a);
        assert_eq!(sb.data[0], 2);
        assert_eq!(sa.data[0], 1);
    }

    #[test]
    #[should_panic(expected = "one segment")]
    fn pair_borrow_same_panics() {
        let mut tracer = Tracer::new();
        let n = tracer.intern_region("x");
        let mut store = ShmStore::default();
        let a = store.create(n, 8);
        let _ = store.seg_pair_mut(a, a);
    }
}
