//! A miniature virtual filesystem with a page cache and deterministic
//! synthetic file contents.
//!
//! Benchmark inputs (MP3s, EPUBs, APKs, SPEC data files) are registered as
//! `(length, seed)` pairs; bytes are generated on demand from a
//! split-mix-style hash so reads are reproducible without storing megabytes.
//! The first read of each 4 KiB page is a *cache miss* that the kernel
//! services through the `ata_sff/0` storage thread — the process SPEC
//! workloads compete with in the paper's Figures 3 and 4.

use agave_mem::PAGE_SIZE;
use std::collections::{HashMap, HashSet};

/// A registered file: deterministic base content plus an overlay of
/// explicitly written bytes.
#[derive(Debug, Clone)]
struct FileNode {
    len: u64,
    seed: u64,
    /// Sparse overlay of written bytes (offset → byte).
    overlay: std::collections::BTreeMap<u64, u8>,
}

/// The in-simulator filesystem.
///
/// # Example
///
/// ```
/// use agave_kernel::Vfs;
///
/// let mut vfs = Vfs::new();
/// vfs.add_file("/sdcard/music/track.mp3", 3 << 20, 42);
/// assert_eq!(vfs.file_len("/sdcard/music/track.mp3"), Some(3 << 20));
/// let mut buf = [0u8; 16];
/// let n = vfs.read_at("/sdcard/music/track.mp3", 100, &mut buf);
/// assert_eq!(n, 16);
/// ```
#[derive(Debug, Default)]
pub struct Vfs {
    files: HashMap<String, FileNode>,
    cached: HashSet<(String, u64)>,
}

impl Vfs {
    /// Creates an empty filesystem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a file of `len` bytes whose contents derive from `seed`.
    ///
    /// Re-registering a path replaces it and drops its cached pages.
    pub fn add_file(&mut self, path: &str, len: u64, seed: u64) {
        self.files.insert(
            path.to_owned(),
            FileNode {
                len,
                seed,
                overlay: std::collections::BTreeMap::new(),
            },
        );
        self.cached.retain(|(p, _)| p != path);
    }

    /// Writes `bytes` at `offset`, creating the file if needed and
    /// extending its length. Written bytes shadow the generated content.
    pub fn write_at(&mut self, path: &str, offset: u64, bytes: &[u8]) {
        let node = self.files.entry(path.to_owned()).or_insert(FileNode {
            len: 0,
            seed: 0,
            overlay: std::collections::BTreeMap::new(),
        });
        for (i, &b) in bytes.iter().enumerate() {
            node.overlay.insert(offset + i as u64, b);
        }
        node.len = node.len.max(offset + bytes.len() as u64);
    }

    /// Length of a registered file.
    pub fn file_len(&self, path: &str) -> Option<u64> {
        self.files.get(path).map(|f| f.len)
    }

    /// Whether `path` exists.
    pub fn exists(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    /// Reads up to `buf.len()` bytes at `offset`, returning bytes read
    /// (0 at or past EOF).
    ///
    /// # Panics
    ///
    /// Panics if `path` is not registered.
    pub fn read_at(&self, path: &str, offset: u64, buf: &mut [u8]) -> usize {
        let node = self
            .files
            .get(path)
            .unwrap_or_else(|| panic!("vfs: no such file {path}"));
        if offset >= node.len {
            return 0;
        }
        let n = buf.len().min((node.len - offset) as usize);
        for (i, b) in buf[..n].iter_mut().enumerate() {
            let pos = offset + i as u64;
            *b = node
                .overlay
                .get(&pos)
                .copied()
                .unwrap_or_else(|| content_byte(node.seed, pos));
        }
        n
    }

    /// Marks the pages overlapping `[offset, offset+len)` as cached and
    /// returns how many were previously *uncached* (i.e. require device
    /// I/O).
    ///
    /// # Panics
    ///
    /// Panics if `path` is not registered.
    pub fn touch_pages(&mut self, path: &str, offset: u64, len: u64) -> u64 {
        let node_len = self
            .files
            .get(path)
            .unwrap_or_else(|| panic!("vfs: no such file {path}"))
            .len;
        if offset >= node_len || len == 0 {
            return 0;
        }
        let end = (offset + len).min(node_len);
        let first = offset / PAGE_SIZE;
        let last = (end - 1) / PAGE_SIZE;
        let mut misses = 0;
        for page in first..=last {
            if self.cached.insert((path.to_owned(), page)) {
                misses += 1;
            }
        }
        misses
    }

    /// Drops every cached page (e.g. between benchmark runs).
    pub fn drop_caches(&mut self) {
        self.cached.clear();
    }

    /// Number of registered files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }
}

/// Deterministic per-byte content generator (splitmix64-flavoured).
fn content_byte(seed: u64, offset: u64) -> u8 {
    let mut z = seed ^ offset.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (z ^ (z >> 31)) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_are_deterministic() {
        let mut vfs = Vfs::new();
        vfs.add_file("/a", 1000, 7);
        let mut b1 = [0u8; 64];
        let mut b2 = [0u8; 64];
        vfs.read_at("/a", 10, &mut b1);
        vfs.read_at("/a", 10, &mut b2);
        assert_eq!(b1, b2);
        let mut b3 = [0u8; 64];
        vfs.read_at("/a", 11, &mut b3);
        assert_ne!(b1, b3);
    }

    #[test]
    fn eof_is_respected() {
        let mut vfs = Vfs::new();
        vfs.add_file("/a", 10, 1);
        let mut buf = [0u8; 64];
        assert_eq!(vfs.read_at("/a", 0, &mut buf), 10);
        assert_eq!(vfs.read_at("/a", 10, &mut buf), 0);
        assert_eq!(vfs.read_at("/a", 8, &mut buf), 2);
    }

    #[test]
    fn page_cache_counts_misses_once() {
        let mut vfs = Vfs::new();
        vfs.add_file("/a", 3 * PAGE_SIZE, 1);
        assert_eq!(vfs.touch_pages("/a", 0, 2 * PAGE_SIZE), 2);
        assert_eq!(vfs.touch_pages("/a", 0, 2 * PAGE_SIZE), 0);
        assert_eq!(vfs.touch_pages("/a", 2 * PAGE_SIZE, 1), 1);
        vfs.drop_caches();
        assert_eq!(vfs.touch_pages("/a", 0, 1), 1);
    }

    #[test]
    fn touch_past_eof_is_zero() {
        let mut vfs = Vfs::new();
        vfs.add_file("/a", 100, 1);
        assert_eq!(vfs.touch_pages("/a", 200, 10), 0);
        assert_eq!(vfs.touch_pages("/a", 0, 0), 0);
    }

    #[test]
    fn seeds_differentiate_files() {
        let mut vfs = Vfs::new();
        vfs.add_file("/a", 100, 1);
        vfs.add_file("/b", 100, 2);
        let mut a = [0u8; 32];
        let mut b = [0u8; 32];
        vfs.read_at("/a", 0, &mut a);
        vfs.read_at("/b", 0, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn writes_shadow_generated_content_and_extend() {
        let mut vfs = Vfs::new();
        vfs.add_file("/a", 8, 1);
        vfs.write_at("/a", 4, b"XYZ");
        let mut buf = [0u8; 8];
        assert_eq!(vfs.read_at("/a", 0, &mut buf), 8);
        assert_eq!(&buf[4..7], b"XYZ");
        // Extension past EOF grows the file.
        vfs.write_at("/a", 20, b"!");
        assert_eq!(vfs.file_len("/a"), Some(21));
        // Creating a brand-new file by writing.
        vfs.write_at("/new", 0, b"hello");
        let mut out = [0u8; 5];
        assert_eq!(vfs.read_at("/new", 0, &mut out), 5);
        assert_eq!(&out, b"hello");
    }

    #[test]
    #[should_panic(expected = "no such file")]
    fn missing_file_panics() {
        let vfs = Vfs::new();
        let mut buf = [0u8; 1];
        vfs.read_at("/missing", 0, &mut buf);
    }
}
