//! The behaviour interface of simulated threads.

use crate::ctx::Ctx;
use crate::message::Message;

/// The behaviour of a simulated thread.
///
/// Every thread owns one boxed `Actor`. The engine delivers mailbox
/// messages one at a time; handlers run to completion, charging memory
/// references through the [`Ctx`] as they model work.
///
/// Synchronous cross-thread calls (the substrate of the Binder model) are
/// delivered to [`Actor::on_call`]; only threads that explicitly serve such
/// calls need to override it.
pub trait Actor {
    /// Called once, before any message, when the thread starts running.
    fn on_start(&mut self, cx: &mut Ctx<'_>) {
        let _ = cx;
    }

    /// Handles one mailbox message.
    fn on_message(&mut self, cx: &mut Ctx<'_>, msg: Message);

    /// Handles a synchronous call from another thread (see
    /// [`Ctx::call_thread`]), returning the reply bytes.
    ///
    /// # Panics
    ///
    /// The default implementation panics: most threads never serve
    /// synchronous calls, and calling one that doesn't is a simulator bug.
    fn on_call(&mut self, cx: &mut Ctx<'_>, code: u32, data: &[u8]) -> Vec<u8> {
        let _ = (cx, code, data);
        panic!("this actor does not accept synchronous calls");
    }
}

/// An actor that ignores every message: useful for threads that only exist
/// to be charged against (kernel workers, placeholder threads).
#[derive(Debug, Default, Clone, Copy)]
pub struct Inert;

impl Actor for Inert {
    fn on_message(&mut self, _cx: &mut Ctx<'_>, _msg: Message) {}
}
