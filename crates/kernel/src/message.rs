//! Messages delivered to thread actors.

use std::any::Any;
use std::fmt;

/// The payload carried by a [`Message`].
///
/// Most framework traffic uses [`Payload::None`] or [`Payload::Bytes`]
/// (serialized parcels); [`Payload::Any`] lets higher layers pass arbitrary
/// structured data between actors in the same simulation.
#[derive(Default)]
pub enum Payload {
    /// No payload.
    #[default]
    None,
    /// Raw bytes (e.g. a serialized parcel).
    Bytes(Vec<u8>),
    /// An arbitrary boxed value for intra-simulation plumbing.
    Any(Box<dyn Any>),
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Payload::None => write!(f, "None"),
            Payload::Bytes(b) => write!(f, "Bytes({} bytes)", b.len()),
            Payload::Any(_) => write!(f, "Any(..)"),
        }
    }
}

/// `what` code reserved for the actor-start notification; never delivered to
/// `on_message`.
pub(crate) const WHAT_START: u32 = u32::MAX;

/// A message in a thread's mailbox, in the style of Android's
/// `android.os.Message`.
///
/// # Example
///
/// ```
/// use agave_kernel::Message;
///
/// let m = Message::new(42).arg1(7).arg2(-1);
/// assert_eq!(m.what, 42);
/// assert_eq!(m.arg1, 7);
/// ```
#[derive(Debug, Default)]
pub struct Message {
    /// User-defined message code.
    pub what: u32,
    /// First scalar argument.
    pub arg1: i64,
    /// Second scalar argument.
    pub arg2: i64,
    /// Optional payload.
    pub payload: Payload,
}

impl Message {
    /// Creates a message with the given `what` code and empty payload.
    pub fn new(what: u32) -> Self {
        Message {
            what,
            ..Default::default()
        }
    }

    /// Sets `arg1` (builder style).
    pub fn arg1(mut self, v: i64) -> Self {
        self.arg1 = v;
        self
    }

    /// Sets `arg2` (builder style).
    pub fn arg2(mut self, v: i64) -> Self {
        self.arg2 = v;
        self
    }

    /// Attaches a byte payload.
    pub fn bytes(mut self, b: Vec<u8>) -> Self {
        self.payload = Payload::Bytes(b);
        self
    }

    /// Attaches an arbitrary boxed payload.
    pub fn any<T: Any>(mut self, v: T) -> Self {
        self.payload = Payload::Any(Box::new(v));
        self
    }

    /// Extracts a typed payload attached with [`Message::any`].
    ///
    /// Returns `None` if the payload is absent or of a different type.
    pub fn take_any<T: Any>(&mut self) -> Option<Box<T>> {
        match std::mem::take(&mut self.payload) {
            Payload::Any(b) => match b.downcast::<T>() {
                Ok(v) => Some(v),
                Err(b) => {
                    self.payload = Payload::Any(b);
                    None
                }
            },
            other => {
                self.payload = other;
                None
            }
        }
    }

    /// Borrows a byte payload attached with [`Message::bytes`].
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match &self.payload {
            Payload::Bytes(b) => Some(b),
            _ => None,
        }
    }

    pub(crate) fn start() -> Self {
        Message::new(WHAT_START)
    }

    pub(crate) fn is_start(&self) -> bool {
        self.what == WHAT_START
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_fields() {
        let m = Message::new(5).arg1(10).arg2(20);
        assert_eq!((m.what, m.arg1, m.arg2), (5, 10, 20));
    }

    #[test]
    fn any_payload_round_trips() {
        let mut m = Message::new(1).any(String::from("hello"));
        assert!(m.take_any::<u32>().is_none()); // wrong type preserved
        let s = m.take_any::<String>().unwrap();
        assert_eq!(*s, "hello");
        assert!(m.take_any::<String>().is_none()); // consumed
    }

    #[test]
    fn bytes_payload_borrowable() {
        let m = Message::new(1).bytes(vec![1, 2, 3]);
        assert_eq!(m.as_bytes(), Some(&[1u8, 2, 3][..]));
        assert!(Message::new(1).as_bytes().is_none());
    }

    #[test]
    fn start_marker_is_reserved() {
        assert!(Message::start().is_start());
        assert!(!Message::new(0).is_start());
    }
}
