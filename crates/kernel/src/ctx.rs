//! The per-dispatch execution context: every modeled memory reference in
//! the simulator flows through [`Ctx`].

use crate::actor::Actor;
use crate::kernel::Kernel;
use crate::message::Message;
use crate::process::{LibHandle, Process};
use crate::regions::WellKnown;
use crate::shm::ShmId;
use agave_mem::{Addr, Allocation, Perms};
use agave_trace::{NameId, Pid, RefKind, Tid};

/// Instruction-fetch cost charged to `libc.so` per malloc/free call.
const MALLOC_CALL_COST: u64 = 80;
const FREE_CALL_COST: u64 = 40;

/// The execution context handed to actor handlers.
///
/// A `Ctx` identifies the currently running (process, thread) pair and
/// maintains a *code-region scope stack*: [`Ctx::op`] charges instruction
/// fetches to the innermost scope, which components push via
/// [`Ctx::in_lib`] when modeling execution inside a particular shared
/// library. Data accessors do real byte operations on the simulated memory
/// *and* charge the reference counts the paper's instrumentation would have
/// recorded.
///
/// One charged reference advances simulated time by one tick (the atomic
/// CPU model).
pub struct Ctx<'k> {
    k: &'k mut Kernel,
    pid: Pid,
    tid: Tid,
    code_stack: Vec<NameId>,
}

impl std::fmt::Debug for Ctx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("pid", &self.pid)
            .field("tid", &self.tid)
            .field("scopes", &self.code_stack.len())
            .finish()
    }
}

impl<'k> Ctx<'k> {
    pub(crate) fn new(k: &'k mut Kernel, pid: Pid, tid: Tid, code: NameId) -> Self {
        Ctx {
            k,
            pid,
            tid,
            code_stack: vec![code],
        }
    }

    /// The running process.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The running thread.
    pub fn tid(&self) -> Tid {
        self.tid
    }

    /// Current simulated time in ticks.
    pub fn now(&self) -> u64 {
        self.k.now()
    }

    /// The well-known region names.
    pub fn well_known(&self) -> WellKnown {
        self.k.well_known()
    }

    /// Escape hatch to the kernel (setup paths, summaries).
    pub fn kernel(&mut self) -> &mut Kernel {
        self.k
    }

    /// Interns a region name.
    pub fn intern_region(&mut self, name: &str) -> NameId {
        self.k.intern_region(name)
    }

    // ---- charging ---------------------------------------------------------

    /// Charges `n` references of `kind` against `region` in this thread's
    /// context and advances time by `n` ticks.
    #[inline]
    pub fn charge(&mut self, region: NameId, kind: RefKind, n: u64) {
        self.k.tracer.charge(self.pid, self.tid, region, kind, n);
        self.k.threads[self.tid.as_u32() as usize].cpu_ticks += n;
        self.k.now += n;
    }

    /// Charges `words` references of `kind` against `region` at a concrete
    /// virtual address — the address-carrying variant of [`Ctx::charge`]
    /// used by the real-memory accessors, so attached cache sinks see true
    /// spatial locality instead of the synthetic per-region stream.
    ///
    /// Accounting and time advance are identical to `charge(region, kind,
    /// words)`.
    #[inline]
    pub fn charge_at(&mut self, region: NameId, kind: RefKind, addr: Addr, words: u64) {
        self.k
            .tracer
            .charge_at(self.pid, self.tid, region, kind, addr.value(), words);
        self.k.threads[self.tid.as_u32() as usize].cpu_ticks += words;
        self.k.now += words;
    }

    /// Charges `n` instruction fetches to the current code scope.
    #[inline]
    pub fn op(&mut self, n: u64) {
        let region = *self.code_stack.last().expect("code scope present");
        self.charge(region, RefKind::InstrFetch, n);
    }

    /// Runs `f` with `lib` as the current code scope.
    pub fn in_lib<R>(&mut self, lib: NameId, f: impl FnOnce(&mut Self) -> R) -> R {
        self.code_stack.push(lib);
        let out = f(self);
        self.code_stack.pop();
        out
    }

    /// Models a leaf call into `lib`: `n` instruction fetches, no scope
    /// change.
    #[inline]
    pub fn call_lib(&mut self, lib: NameId, n: u64) {
        self.charge(lib, RefKind::InstrFetch, n);
    }

    /// Models a syscall: `n` kernel instruction fetches plus a sprinkle of
    /// kernel data traffic.
    pub fn syscall(&mut self, n: u64) {
        let wk = self.well_known();
        self.charge(wk.os_kernel, RefKind::InstrFetch, n);
        self.charge(wk.os_kernel, RefKind::DataRead, n / 4);
        self.charge(wk.os_kernel, RefKind::DataWrite, n / 8);
    }

    /// Charges data traffic against an arbitrary region.
    #[inline]
    pub fn data_rw(&mut self, region: NameId, reads: u64, writes: u64) {
        self.charge(region, RefKind::DataRead, reads);
        self.charge(region, RefKind::DataWrite, writes);
    }

    /// Charges data traffic against the thread stack.
    #[inline]
    pub fn stack_rw(&mut self, reads: u64, writes: u64) {
        let stack = self.well_known().stack;
        self.data_rw(stack, reads, writes);
    }

    // ---- simulated memory (current process) --------------------------------

    /// The current process.
    pub fn process(&mut self) -> &mut Process {
        self.k.process_mut(self.pid)
    }

    fn region_of(&self, addr: Addr) -> NameId {
        self.k
            .process(self.pid)
            .space
            .region_name(addr)
            .unwrap_or_else(|| panic!("access to unmapped address {addr}"))
    }

    /// Charged 32-bit load.
    pub fn load_u32(&mut self, addr: Addr) -> u32 {
        let region = self.region_of(addr);
        self.charge_at(region, RefKind::DataRead, addr, 1);
        self.k.process(self.pid).space.read_u32(addr)
    }

    /// Charged 32-bit store.
    pub fn store_u32(&mut self, addr: Addr, v: u32) {
        let region = self.region_of(addr);
        self.charge_at(region, RefKind::DataWrite, addr, 1);
        self.k.process_mut(self.pid).space.write_u32(addr, v);
    }

    /// Charged 64-bit load.
    pub fn load_u64(&mut self, addr: Addr) -> u64 {
        let region = self.region_of(addr);
        self.charge_at(region, RefKind::DataRead, addr, 1);
        self.k.process(self.pid).space.read_u64(addr)
    }

    /// Charged 64-bit store.
    pub fn store_u64(&mut self, addr: Addr, v: u64) {
        let region = self.region_of(addr);
        self.charge_at(region, RefKind::DataWrite, addr, 1);
        self.k.process_mut(self.pid).space.write_u64(addr, v);
    }

    /// Charged 8-bit load.
    pub fn load_u8(&mut self, addr: Addr) -> u8 {
        let region = self.region_of(addr);
        self.charge_at(region, RefKind::DataRead, addr, 1);
        self.k.process(self.pid).space.read_u8(addr)
    }

    /// Charged 8-bit store.
    pub fn store_u8(&mut self, addr: Addr, v: u8) {
        let region = self.region_of(addr);
        self.charge_at(region, RefKind::DataWrite, addr, 1);
        self.k.process_mut(self.pid).space.write_u8(addr, v);
    }

    /// Charged bulk read into `buf` (one data read per 4 bytes).
    pub fn read_buf(&mut self, addr: Addr, buf: &mut [u8]) {
        let region = self.region_of(addr);
        self.charge_at(region, RefKind::DataRead, addr, word_refs(buf.len()));
        self.k.process(self.pid).space.read(addr, buf);
    }

    /// Charged bulk write of `bytes` (one data write per 4 bytes).
    pub fn write_buf(&mut self, addr: Addr, bytes: &[u8]) {
        let region = self.region_of(addr);
        self.charge_at(region, RefKind::DataWrite, addr, word_refs(bytes.len()));
        self.k.process_mut(self.pid).space.write(addr, bytes);
    }

    /// Charged memcpy within the current process (real bytes move).
    pub fn memcpy(&mut self, dst: Addr, src: Addr, len: u64) {
        if len == 0 {
            return;
        }
        let src_region = self.region_of(src);
        let dst_region = self.region_of(dst);
        self.charge_at(src_region, RefKind::DataRead, src, word_refs(len as usize));
        self.charge_at(dst_region, RefKind::DataWrite, dst, word_refs(len as usize));
        self.op(len / 16 + 4);
        self.k
            .process_mut(self.pid)
            .space
            .copy_within(dst, src, len);
    }

    /// Charged memset within the current process (real bytes change).
    pub fn memset(&mut self, dst: Addr, len: u64, value: u8) {
        if len == 0 {
            return;
        }
        let region = self.region_of(dst);
        self.charge_at(region, RefKind::DataWrite, dst, word_refs(len as usize));
        self.op(len / 16 + 4);
        self.k.process_mut(self.pid).space.fill(dst, len, value);
    }

    /// Charged malloc via the process's C allocator.
    pub fn malloc(&mut self, size: u64) -> Allocation {
        let wk = self.well_known();
        self.call_lib(wk.libc, MALLOC_CALL_COST);
        let allocation = self.k.process_mut(self.pid).malloc_alloc(size);
        // Allocator metadata writes land in the serving arena.
        let region = match allocation.kind {
            agave_mem::AllocationKind::Heap => wk.heap,
            agave_mem::AllocationKind::Anonymous => wk.anonymous,
        };
        self.charge(region, RefKind::DataWrite, 4);
        allocation
    }

    /// Charged free.
    pub fn free(&mut self, allocation: Allocation) {
        let wk = self.well_known();
        self.call_lib(wk.libc, FREE_CALL_COST);
        self.k.process_mut(self.pid).malloc_free(allocation);
    }

    /// Maps an anonymous region with an explicit name in the current
    /// process (charged as a syscall).
    pub fn mmap_region(&mut self, len: u64, name: NameId, perms: Perms) -> Addr {
        self.syscall(200);
        self.k.process_mut(self.pid).space.mmap(len, name, perms)
    }

    // ---- shared memory -------------------------------------------------------

    /// Creates a shared segment charged against `region_name`.
    pub fn shm_create(&mut self, region_name: NameId, len: usize) -> ShmId {
        self.syscall(300);
        self.k.shm_create(region_name, len)
    }

    /// Length of a shared segment.
    pub fn shm_len(&self, id: ShmId) -> usize {
        self.k.shm_len(id)
    }

    /// Charged read from a shared segment.
    pub fn shm_read(&mut self, id: ShmId, offset: usize, buf: &mut [u8]) {
        let name = self.k.shm.seg(id).name;
        self.charge(name, RefKind::DataRead, word_refs(buf.len()));
        let seg = self.k.shm.seg(id);
        buf.copy_from_slice(&seg.data[offset..offset + buf.len()]);
    }

    /// Charged write to a shared segment.
    pub fn shm_write(&mut self, id: ShmId, offset: usize, bytes: &[u8]) {
        let name = self.k.shm.seg(id).name;
        self.charge(name, RefKind::DataWrite, word_refs(bytes.len()));
        let seg = self.k.shm.seg_mut(id);
        seg.data[offset..offset + bytes.len()].copy_from_slice(bytes);
    }

    /// Charged fill of a shared segment range.
    pub fn shm_fill(&mut self, id: ShmId, offset: usize, len: usize, value: u8) {
        let name = self.k.shm.seg(id).name;
        self.charge(name, RefKind::DataWrite, word_refs(len));
        let seg = self.k.shm.seg_mut(id);
        seg.data[offset..offset + len].fill(value);
    }

    /// Charged copy between two distinct shared segments (real bytes move):
    /// reads charged to the source's region, writes to the destination's.
    ///
    /// # Panics
    ///
    /// Panics if `dst == src` or ranges are out of bounds.
    pub fn shm_copy(&mut self, dst: ShmId, dst_off: usize, src: ShmId, src_off: usize, len: usize) {
        let src_name = self.k.shm.seg(src).name;
        let dst_name = self.k.shm.seg(dst).name;
        self.charge(src_name, RefKind::DataRead, word_refs(len));
        self.charge(dst_name, RefKind::DataWrite, word_refs(len));
        self.op(len as u64 / 16 + 4);
        let (d, s) = self.k.shm.seg_pair_mut(dst, src);
        d.data[dst_off..dst_off + len].copy_from_slice(&s.data[src_off..src_off + len]);
    }

    /// Analytic charge against a shared segment without moving bytes —
    /// used when components operate on a decimated buffer but must account
    /// full-resolution traffic.
    pub fn shm_rw(&mut self, id: ShmId, reads: u64, writes: u64) {
        let name = self.k.shm.seg(id).name;
        self.data_rw(name, reads, writes);
    }

    // ---- filesystem -----------------------------------------------------------

    /// Charged file read: syscall entry, page-cache lookup, device I/O for
    /// cold pages (billed to `ata_sff/0`), and the copy out of the page
    /// cache. Returns bytes read.
    pub fn fs_read(&mut self, path: &str, offset: u64, buf: &mut [u8]) -> usize {
        self.syscall(400);
        let n = self.k.fs_read_charged(path, offset, buf);
        if n > 0 {
            // Copy from the kernel page cache to the caller; the mapped
            // file itself is a named region in `/proc/pid/maps` terms, so
            // a slice of the traffic lands on it.
            let wk = self.well_known();
            self.charge(wk.os_kernel, RefKind::DataRead, word_refs(n));
            let file_region = self.intern_region(path);
            self.charge(file_region, RefKind::DataRead, n as u64 / 32 + 1);
        }
        n
    }

    /// Charged file write: syscall entry, copy into the page cache, and
    /// eventual writeback billed to `ata_sff/0`. Creates/extends the file.
    pub fn fs_write(&mut self, path: &str, offset: u64, bytes: &[u8]) {
        self.syscall(400);
        let wk = self.well_known();
        self.charge(wk.os_kernel, RefKind::DataWrite, word_refs(bytes.len()));
        let file_region = self.intern_region(path);
        self.charge(file_region, RefKind::DataWrite, bytes.len() as u64 / 32 + 1);
        self.k.fs_write_charged(path, offset, bytes);
    }

    /// Length of a registered file.
    pub fn fs_len(&self, path: &str) -> Option<u64> {
        self.k.vfs().file_len(path)
    }

    // ---- messaging & scheduling -------------------------------------------------

    /// Sends `msg` to `tid` for asynchronous delivery.
    pub fn send(&mut self, tid: Tid, msg: Message) {
        self.k.deliver(tid, msg);
    }

    /// Schedules `msg` for `tid` after `delay` ticks.
    pub fn send_after(&mut self, delay: u64, tid: Tid, msg: Message) {
        self.k.send_after(delay, tid, msg);
    }

    /// Sends a message to the current thread.
    pub fn post_self(&mut self, msg: Message) {
        self.k.deliver(self.tid, msg);
    }

    /// Schedules a message to the current thread after `delay` ticks.
    pub fn post_self_after(&mut self, delay: u64, msg: Message) {
        self.k.send_after(delay, self.tid, msg);
    }

    /// Makes a synchronous call into another thread's actor, running its
    /// [`Actor::on_call`] in *that* thread's (process, thread) context —
    /// the primitive the Binder model is built on.
    ///
    /// # Panics
    ///
    /// Panics if the target is dead, has no actor, or is already executing
    /// (re-entrant call chains are a simulator bug).
    pub fn call_thread(&mut self, target: Tid, code: u32, data: &[u8]) -> Vec<u8> {
        assert_ne!(target, self.tid, "synchronous call to self");
        let (target_pid, target_code, mut actor) = {
            let thread = &mut self.k.threads[target.as_u32() as usize];
            assert!(thread.is_alive(), "synchronous call to dead thread");
            let actor = thread
                .actor
                .take()
                .expect("synchronous call to busy (re-entrant) thread");
            (thread.pid(), thread.default_code, actor)
        };
        let reply = {
            let mut cx = Ctx::new(self.k, target_pid, target, target_code);
            actor.on_call(&mut cx, code, data)
        };
        let thread = &mut self.k.threads[target.as_u32() as usize];
        if thread.is_alive() {
            thread.actor = Some(actor);
        }
        reply
    }

    // ---- process / thread management ----------------------------------------------

    /// Spawns a user process.
    pub fn spawn_process(&mut self, name: &str) -> Pid {
        self.k.spawn_process(name)
    }

    /// Forks `parent` zygote-style (mappings and bytes inherited).
    pub fn fork_process(&mut self, parent: Pid, name: &str) -> Pid {
        self.syscall(2_000); // fork is expensive
        self.k.fork_process(parent, name)
    }

    /// Spawns a thread in `pid` with the process default code region.
    pub fn spawn_thread(&mut self, pid: Pid, name: &str, actor: Box<dyn Actor>) -> Tid {
        self.syscall(500);
        self.k.spawn_thread(pid, name, actor)
    }

    /// Spawns a thread with an explicit home code region.
    pub fn spawn_thread_in(
        &mut self,
        pid: Pid,
        name: &str,
        code: NameId,
        actor: Box<dyn Actor>,
    ) -> Tid {
        self.syscall(500);
        self.k.spawn_thread_in(pid, name, code, actor)
    }

    /// Maps a library into `pid`.
    pub fn map_lib(&mut self, pid: Pid, name: &str, text_len: u64, data_len: u64) -> LibHandle {
        self.k.map_lib(pid, name, text_len, data_len)
    }

    /// Terminates the current thread; remaining and future messages are
    /// dropped.
    pub fn exit_thread(&mut self) {
        self.k.threads[self.tid.as_u32() as usize].kill();
    }

    /// Terminates a whole process and all its threads.
    pub fn exit_process(&mut self, pid: Pid) {
        let tids: Vec<Tid> = self.k.process(pid).threads().to_vec();
        for tid in tids {
            self.k.threads[tid.as_u32() as usize].kill();
        }
        self.k.process_mut(pid).kill();
    }
}

/// One memory reference per 32-bit word, minimum 1 for nonzero lengths.
fn word_refs(bytes: usize) -> u64 {
    if bytes == 0 {
        0
    } else {
        (bytes as u64).div_ceil(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_refs_rounds_up() {
        assert_eq!(word_refs(0), 0);
        assert_eq!(word_refs(1), 1);
        assert_eq!(word_refs(4), 1);
        assert_eq!(word_refs(5), 2);
        assert_eq!(word_refs(4096), 1024);
    }
}
