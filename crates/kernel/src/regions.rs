//! Well-known region names shared across the whole software stack.

use agave_trace::{NameId, Tracer};

/// Interned ids for the region names that appear in the paper's figure
/// legends, resolved once at kernel construction.
///
/// Higher layers intern additional library names on demand; these are just
/// the ones referenced from many crates.
#[derive(Debug, Clone, Copy)]
pub struct WellKnown {
    /// `OS kernel` — kernel text and data.
    pub os_kernel: NameId,
    /// `app binary` — the process's main executable image.
    pub app_binary: NameId,
    /// `heap` — the brk-managed C heap.
    pub heap: NameId,
    /// `stack` — thread stacks.
    pub stack: NameId,
    /// `anonymous` — large-malloc/anonymous mmap regions.
    pub anonymous: NameId,
    /// `libc.so` — bionic.
    pub libc: NameId,
    /// `mspace` — Skia's dlmalloc arena (pixel scratch + generated blitters).
    pub mspace: NameId,
    /// `libdvm.so` — the Dalvik VM.
    pub libdvm: NameId,
    /// `libskia.so` — the 2D renderer.
    pub libskia: NameId,
    /// `libstagefright.so` — the media framework.
    pub libstagefright: NameId,
    /// `dalvik-heap` — the managed object heap.
    pub dalvik_heap: NameId,
    /// `dalvik-LinearAlloc` — class metadata arena.
    pub dalvik_linear_alloc: NameId,
    /// `dalvik-jit-code-cache` — the trace JIT's emitted code.
    pub dalvik_jit: NameId,
    /// `gralloc-buffer` — shared window surfaces.
    pub gralloc: NameId,
    /// `fb0 (frame buffer)` — the display framebuffer.
    pub fb0: NameId,
    /// `ashmem` — miscellaneous shared memory.
    pub ashmem: NameId,
    /// `/dev/binder` — the binder driver mapping.
    pub dev_binder: NameId,
}

impl WellKnown {
    /// Interns every well-known name into `tracer`.
    pub fn intern(tracer: &mut Tracer) -> Self {
        WellKnown {
            os_kernel: tracer.intern_region("OS kernel"),
            app_binary: tracer.intern_region("app binary"),
            heap: tracer.intern_region("heap"),
            stack: tracer.intern_region("stack"),
            anonymous: tracer.intern_region("anonymous"),
            libc: tracer.intern_region("libc.so"),
            mspace: tracer.intern_region("mspace"),
            libdvm: tracer.intern_region("libdvm.so"),
            libskia: tracer.intern_region("libskia.so"),
            libstagefright: tracer.intern_region("libstagefright.so"),
            dalvik_heap: tracer.intern_region("dalvik-heap"),
            dalvik_linear_alloc: tracer.intern_region("dalvik-LinearAlloc"),
            dalvik_jit: tracer.intern_region("dalvik-jit-code-cache"),
            gralloc: tracer.intern_region("gralloc-buffer"),
            fb0: tracer.intern_region("fb0 (frame buffer)"),
            ashmem: tracer.intern_region("ashmem"),
            dev_binder: tracer.intern_region("/dev/binder"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let mut tracer = Tracer::new();
        let a = WellKnown::intern(&mut tracer);
        let b = WellKnown::intern(&mut tracer);
        assert_eq!(a.os_kernel, b.os_kernel);
        assert_eq!(a.fb0, b.fb0);
        assert_eq!(tracer.resolve(a.fb0), "fb0 (frame buffer)");
        assert_eq!(tracer.resolve(a.dalvik_jit), "dalvik-jit-code-cache");
    }
}
