//! The unified workload execution engine.
//!
//! Historically the workspace grew three parallel entry-point families —
//! `run_app` in `agave-apps`, `run_spec` in `agave-spec`, and
//! `run_workload`/`run_workload_with_cache` in `agave-core` — each with
//! its own `*_with_sink` clone re-implementing the same boot → attach
//! sinks → run → summarize sequence. This module collapses them into one
//! layer (the `*_with_sink` shims are gone):
//!
//! * [`run`] executes any [`Workload`] under an [`EngineConfig`] and
//!   returns a [`WorkloadOutcome`] (summary + name directory, wall time
//!   stamped).
//! * [`run_observed`] is the same run with any number of
//!   [`ReferenceSink`](agave_trace::ReferenceSink)s attached to the
//!   world's classified reference stream — the cache hierarchy today,
//!   future observers tomorrow — replacing the former `*_with_sink`
//!   clones.
//! * [`run_suite_parallel`] fans independent workloads out across
//!   `std::thread` workers and merges results back in canonical figure
//!   order, byte-identical to a serial run.
//!
//! # Parallel execution model
//!
//! Every workload boots a private simulated world (kernel, tracer,
//! sinks), exactly as each of the paper's measurements ran against a
//! fresh gem5 instance; nothing is shared between runs, so the suite is
//! embarrassingly parallel. The fan-out is a hand-rolled work-stealing
//! index: `jobs` scoped threads repeatedly claim the next unclaimed
//! workload index from an `AtomicUsize` and write the outcome into that
//! index's dedicated result slot. Claiming by index keeps the output
//! order canonical no matter which worker finishes first, which is what
//! makes `--jobs N` output byte-identical to serial output. No external
//! thread-pool crate is involved.

use crate::suite::Workload;
use agave_apps::{execute_app_traced, RunConfig};
use agave_spec::{execute_spec_traced, SpecConfig};
use agave_trace::{CounterSnapshot, NameDirectory, RunSummary, SharedSink};

// The fan-out primitive moved to the base crate (`agave_trace::par`) so
// layers below `agave-core` — notably the `agave-serve` worker pool —
// can share it; these re-exports keep the historical `engine::` paths.
pub use agave_trace::par::{effective_jobs, parallel_map};

/// Sizing knobs for engine runs: how big each Agave application run and
/// each SPEC problem is.
///
/// This is the same shape the suite layer has always used;
/// [`crate::SuiteConfig`] is now an alias for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Agave application run sizing.
    pub app: RunConfig,
    /// SPEC problem sizing.
    pub spec: SpecConfig,
}

impl EngineConfig {
    /// The configuration used for the EXPERIMENTS.md numbers.
    pub fn reference() -> Self {
        EngineConfig {
            app: RunConfig::reference(),
            spec: SpecConfig::reference(),
        }
    }

    /// A fast configuration for tests and benches.
    pub fn quick() -> Self {
        EngineConfig {
            app: RunConfig::quick(),
            spec: SpecConfig::tiny(),
        }
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self::reference()
    }
}

/// Everything one engine run produces.
#[derive(Debug, Clone)]
pub struct WorkloadOutcome {
    /// The workload that ran.
    pub workload: Workload,
    /// The distilled measurements (wall time stamped by the run path).
    pub summary: RunSummary,
    /// Name/process tables for resolving sink-observed ids after the
    /// simulated world is gone.
    pub directory: NameDirectory,
}

/// Runs one workload to completion on a fresh simulated world.
pub fn run(workload: Workload, config: &EngineConfig) -> WorkloadOutcome {
    run_observed(workload, config, Vec::new())
}

/// Runs one workload with `sinks` attached to the world's classified
/// reference stream.
///
/// Sinks observe every charge in program order (see
/// [`agave_trace::ReferenceSink`]); the caller keeps its own handle to
/// each sink and harvests results after the run:
///
/// ```no_run
/// use agave_core::engine::{self, EngineConfig};
/// use agave_core::{AppId, HierarchyGeometry, MemoryHierarchy, Workload};
/// use std::cell::RefCell;
/// use std::rc::Rc;
///
/// let hierarchy = Rc::new(RefCell::new(MemoryHierarchy::new(
///     HierarchyGeometry::cortex_a9(),
/// )));
/// let outcome = engine::run_observed(
///     Workload::Agave(AppId::GalleryMp4View),
///     &EngineConfig::quick(),
///     vec![hierarchy.clone()],
/// );
/// let report = hierarchy
///     .borrow()
///     .report(outcome.workload.label(), &outcome.directory);
/// ```
pub fn run_observed(
    workload: Workload,
    config: &EngineConfig,
    sinks: Vec<SharedSink>,
) -> WorkloadOutcome {
    run_traced(workload, config, sinks).0
}

/// [`run_observed`] plus the boot-baseline counter snapshot taken at
/// sink-attach time.
///
/// The snapshot is the trace recorder's correction term: charges from
/// before the sinks attached (world boot) never reach the stream, so
/// `snapshot + stream = final counters`. The `agave record` path stores
/// it in the `.agtrace` footer; everyone else uses [`run_observed`] and
/// drops it.
pub fn run_traced(
    workload: Workload,
    config: &EngineConfig,
    sinks: Vec<SharedSink>,
) -> (WorkloadOutcome, CounterSnapshot) {
    run_traced_ordered(workload, config, sinks, 0)
}

/// [`run_traced`] with an explicit telemetry sort key: the per-workload
/// "run" span records `order` so suite span trees sort canonically no
/// matter which worker claimed which index. Inert when telemetry is off.
fn run_traced_ordered(
    workload: Workload,
    config: &EngineConfig,
    sinks: Vec<SharedSink>,
    order: u64,
) -> (WorkloadOutcome, CounterSnapshot) {
    let mut span = agave_telemetry::Span::enter_labeled("run", workload.label());
    span.set_order(order);
    let started = agave_telemetry::enabled().then(std::time::Instant::now);
    let (summary, directory, baseline) = match workload {
        Workload::Agave(app) => execute_app_traced(app, config.app, sinks),
        Workload::Spec(program) => execute_spec_traced(program, config.spec, sinks),
    };
    span.set_refs(summary.total_refs());
    if let Some(started) = started {
        record_run_metrics(started.elapsed().as_nanos() as u64, summary.total_refs());
    }
    (
        WorkloadOutcome {
            workload,
            summary,
            directory,
        },
        baseline,
    )
}

/// Feeds the `engine.*` metrics after one telemetry-enabled workload
/// run. Once per workload (never per reference), so the cost is a few
/// relaxed atomics per run; sink-less paths (`agave run`/`agave suite`)
/// still get meter readings this way.
#[cold]
fn record_run_metrics(wall_ns: u64, refs: u64) {
    use agave_telemetry::metrics::{Counter, Histogram};
    use std::sync::OnceLock;
    static RUNS: OnceLock<&'static Counter> = OnceLock::new();
    static REFS: OnceLock<&'static Counter> = OnceLock::new();
    static WALL_NS: OnceLock<&'static Histogram> = OnceLock::new();
    static RUN_REFS: OnceLock<&'static Histogram> = OnceLock::new();
    RUNS.get_or_init(|| agave_telemetry::metrics::counter("engine.runs"))
        .incr();
    REFS.get_or_init(|| agave_telemetry::metrics::counter("engine.refs"))
        .add(refs);
    WALL_NS
        .get_or_init(|| agave_telemetry::metrics::histogram("engine.run_wall_ns"))
        .record(wall_ns);
    RUN_REFS
        .get_or_init(|| agave_telemetry::metrics::histogram("engine.run_refs"))
        .record(refs);
}

/// Runs `workloads` across up to `jobs` worker threads and returns their
/// outcomes in input order.
///
/// `jobs == 0` means "one per available CPU"; `jobs == 1` runs inline on
/// the calling thread (the serial path, with zero threading overhead).
/// Output is byte-identical to the serial path for any `jobs`: each
/// workload simulates a private deterministic world, and outcomes are
/// merged back by index, not completion order.
pub fn run_suite_parallel(
    workloads: &[Workload],
    config: &EngineConfig,
    jobs: usize,
) -> Vec<WorkloadOutcome> {
    // Telemetry coordinator state: a "suite" span every worker's spans
    // nest under, plus the once-a-second stderr heartbeat. Both are
    // inert (no thread, no clock, no lock) when telemetry is disabled.
    let mut suite_span = agave_telemetry::Span::enter("suite");
    let suite_id = suite_span.id();
    if agave_telemetry::enabled() {
        agave_telemetry::metrics::gauge("suite.jobs").set(effective_jobs(jobs) as u64);
    }
    let heartbeat = agave_telemetry::Heartbeat::start("suite", workloads.len());
    let outcomes = parallel_map(workloads.len(), jobs, |i| {
        let _stitch = agave_telemetry::set_thread_parent(suite_id);
        heartbeat.begin_item(workloads[i].label());
        let (outcome, _) = run_traced_ordered(workloads[i], config, Vec::new(), i as u64 + 1);
        heartbeat.finish_item(outcome.summary.total_refs());
        outcome
    });
    suite_span.set_refs(heartbeat.refs());
    // Close the span before the heartbeat: joining the ticker thread can
    // wait out its sleep, which is scheduling latency, not suite work.
    drop(suite_span);
    heartbeat.finish();
    outcomes
}

/// A configured engine: the object form of this module's free functions,
/// convenient when one sizing is threaded through a whole experiment.
///
/// ```no_run
/// use agave_core::engine::{EngineConfig, WorkloadEngine};
///
/// let engine = WorkloadEngine::new(EngineConfig::quick());
/// let results = engine.run_suite_parallel(4);
/// println!("{}", results.to_json());
/// ```
#[derive(Debug, Clone, Default)]
pub struct WorkloadEngine {
    config: EngineConfig,
}

impl WorkloadEngine {
    /// An engine that runs everything at `config` sizing.
    pub fn new(config: EngineConfig) -> Self {
        WorkloadEngine { config }
    }

    /// The engine's sizing.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Runs one workload — see [`run`].
    pub fn run(&self, workload: Workload) -> WorkloadOutcome {
        run(workload, &self.config)
    }

    /// Runs one workload with sinks attached — see [`run_observed`].
    pub fn run_observed(&self, workload: Workload, sinks: Vec<SharedSink>) -> WorkloadOutcome {
        run_observed(workload, &self.config, sinks)
    }

    /// Runs the full 25-workload suite serially.
    pub fn run_suite(&self) -> crate::SuiteResults {
        self.run_suite_parallel(1)
    }

    /// Runs the full 25-workload suite on up to `jobs` threads
    /// (0 = one per CPU), collecting results in canonical figure order.
    pub fn run_suite_parallel(&self, jobs: usize) -> crate::SuiteResults {
        let outcomes = run_suite_parallel(&crate::all_workloads(), &self.config, jobs);
        crate::SuiteResults::from_outcomes(outcomes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::all_workloads;
    use agave_apps::AppId;
    use agave_spec::SpecProgram;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn parallel_map_preserves_index_order() {
        for jobs in [0, 1, 2, 3, 8, 64] {
            let out = parallel_map(17, jobs, |i| i * i);
            assert_eq!(
                out,
                (0..17).map(|i| i * i).collect::<Vec<_>>(),
                "jobs={jobs}"
            );
        }
        assert!(parallel_map(0, 4, |i| i).is_empty());
    }

    #[test]
    fn engine_run_matches_the_legacy_free_functions() {
        let config = EngineConfig::quick();
        let outcome = run(Workload::Agave(AppId::CountdownMain), &config);
        assert_eq!(outcome.summary.benchmark, "countdown.main");
        assert!(outcome.summary.total_instr > 0);
        assert!(
            outcome.summary.wall_time_ns > 0,
            "engine must stamp wall time"
        );
        assert!(outcome.directory.process_count() > 0);
        let legacy = agave_apps::run_app(AppId::CountdownMain, config.app);
        assert_eq!(outcome.summary, legacy);
    }

    #[test]
    fn run_observed_feeds_every_sink() {
        #[derive(Default)]
        struct Count {
            blocks: u64,
        }
        impl agave_trace::ReferenceSink for Count {
            fn on_reference(&mut self, _r: &agave_trace::Reference) {
                self.blocks += 1;
            }
        }
        let a = Rc::new(RefCell::new(Count::default()));
        let b = Rc::new(RefCell::new(Count::default()));
        let outcome = run_observed(
            Workload::Spec(SpecProgram::Specrand),
            &EngineConfig::quick(),
            vec![a.clone(), b.clone()],
        );
        assert!(a.borrow().blocks > 0, "first sink saw nothing");
        assert_eq!(
            a.borrow().blocks,
            b.borrow().blocks,
            "sinks must see the same stream"
        );
        assert_eq!(outcome.summary.benchmark, "999.specrand");
    }

    #[test]
    fn parallel_suite_equals_serial_suite_on_a_subset() {
        let workloads = [
            Workload::Agave(AppId::CountdownMain),
            Workload::Spec(SpecProgram::Specrand),
            Workload::Agave(AppId::JetboyMain),
        ];
        let config = EngineConfig::quick();
        let serial = run_suite_parallel(&workloads, &config, 1);
        let parallel = run_suite_parallel(&workloads, &config, 3);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.workload, p.workload, "order must be canonical");
            assert_eq!(
                s.summary, p.summary,
                "{}: diverged under threads",
                s.workload
            );
            assert_eq!(s.summary.to_json(), p.summary.to_json());
        }
    }

    #[test]
    fn workload_engine_wraps_the_free_functions() {
        let engine = WorkloadEngine::new(EngineConfig::quick());
        assert_eq!(engine.config().app, RunConfig::quick());
        let outcome = engine.run(Workload::Spec(SpecProgram::Specrand));
        assert_eq!(outcome.summary.benchmark, "999.specrand");
        assert_eq!(all_workloads().len(), 25);
    }

    #[test]
    fn jobs_zero_resolves_to_available_cpus() {
        assert!(effective_jobs(0) >= 1);
        assert_eq!(effective_jobs(7), 7);
    }
}
