//! **Agave-rs** — a Rust reproduction of *"Agave: A Benchmark Suite for
//! Exploring the Complexities of the Android Software Stack"* (Brown et
//! al., ISPASS 2016).
//!
//! This crate is the front door of the workspace: it unifies the 19 Agave
//! workload configurations (`agave-apps`) and the six SPEC CPU2006
//! baselines (`agave-spec`) behind one [`Workload`] registry, runs them on
//! the simulated Android software stack, and regenerates every evaluation
//! artifact of the paper:
//!
//! * [`Experiments::figure1`] — instruction references by VMA region;
//! * [`Experiments::figure2`] — data references by VMA region;
//! * [`Experiments::figure3`] — instruction references by process;
//! * [`Experiments::figure4`] — data references by process;
//! * [`Experiments::table1`] — threads ranked by total memory references;
//! * [`Experiments::check_claims`] — the paper's quantitative claims
//!   (region counts, process/thread ranges, mediaserver dominance, …) as
//!   pass/fail rows.
//!
//! # Quickstart
//!
//! ```no_run
//! use agave_core::{run_workload, SuiteConfig, Workload};
//! use agave_core::AppId;
//!
//! let config = SuiteConfig::quick();
//! let summary = run_workload(Workload::Agave(AppId::GalleryMp4View), &config);
//! println!("mediaserver share: {:.1}%",
//!          summary.instr_process_share("mediaserver") * 100.0);
//! ```
//!
//! For the full paper reproduction, see `examples/suite_report.rs` (or the
//! Criterion benches in `agave-bench`, one per figure/table).
//!
//! # The engine layer
//!
//! Every run path — single workload, full suite, cache replay — funnels
//! through the [`engine`] module: [`engine::run`] executes any workload,
//! [`engine::run_observed`] attaches reference-stream sinks, and
//! [`engine::run_suite_parallel`] fans the mutually independent workloads
//! out across threads (`agave suite --jobs N`), with results merged back
//! in canonical figure order so output is byte-identical to serial runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchcases;
mod cache;
pub mod cli;
pub mod engine;
mod experiments;
mod profiles;
pub mod record;
mod report;
mod suite;

pub use cache::{run_workload_with_cache, Fig5Cache, Fig5Row};
pub use engine::{EngineConfig, WorkloadEngine, WorkloadOutcome};
pub use experiments::{ClaimReport, Experiments};
pub use profiles::{library_profiles, render_library_profiles, LibraryProfile};
pub use record::{
    record_workload, record_workload_chunked, replay_trace_cache, replay_trace_summary, trace_path,
};
pub use report::{experiments_markdown, write_artifacts};
pub use suite::{
    all_workloads, run_suite, run_suite_jobs, run_workload, SuiteConfig, SuiteResults, Workload,
};

// The user-facing surface of the lower layers.
pub use agave_analysis::{analyze_path, sweep_path, GridSpec, SweepCell, SweepReport};
pub use agave_apps::{all_apps, AppId, RunConfig};
pub use agave_cache::{CacheReport, HierarchyGeometry, Level, LevelStats, MemoryHierarchy};
pub use agave_spec::{spec_programs, SpecConfig, SpecProgram};
pub use agave_trace::{Breakdown, FigureTable, RunSummary, TableOne, TableOneRow};
