//! The unified workload registry and suite runner.

use agave_apps::{all_apps, run_app, AppId, RunConfig};
use agave_spec::{run_spec, spec_programs, SpecConfig, SpecProgram};
use agave_trace::{json, RunSummary};
use std::fmt;

/// Any runnable workload: one of the 19 Agave configurations or one of the
/// six SPEC baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// An Agave application configuration.
    Agave(AppId),
    /// A SPEC CPU2006 baseline.
    Spec(SpecProgram),
}

impl Workload {
    /// The figure label.
    pub fn label(self) -> &'static str {
        match self {
            Workload::Agave(app) => app.label(),
            Workload::Spec(program) => program.label(),
        }
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// All 25 workloads in the figures' x-axis order (19 Agave, then 6 SPEC).
pub fn all_workloads() -> Vec<Workload> {
    let mut out: Vec<Workload> = all_apps().into_iter().map(Workload::Agave).collect();
    out.extend(spec_programs().into_iter().map(Workload::Spec));
    out
}

/// Sizing for a full suite run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuiteConfig {
    /// Agave application run sizing.
    pub app: RunConfig,
    /// SPEC problem sizing.
    pub spec: SpecConfig,
}

impl SuiteConfig {
    /// The configuration used for the EXPERIMENTS.md numbers.
    pub fn reference() -> Self {
        SuiteConfig {
            app: RunConfig::reference(),
            spec: SpecConfig::reference(),
        }
    }

    /// A fast configuration for tests and benches.
    pub fn quick() -> Self {
        SuiteConfig {
            app: RunConfig::quick(),
            spec: SpecConfig::tiny(),
        }
    }
}

impl Default for SuiteConfig {
    fn default() -> Self {
        Self::reference()
    }
}

/// Runs one workload to completion and returns its summary.
pub fn run_workload(workload: Workload, config: &SuiteConfig) -> RunSummary {
    match workload {
        Workload::Agave(app) => run_app(app, config.app),
        Workload::Spec(program) => run_spec(program, config.spec),
    }
}

/// The results of a full suite run: one summary per workload, in figure
/// order. Serializable for archival via [`SuiteResults::to_json`].
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteResults {
    /// The 19 Agave summaries.
    pub agave: Vec<RunSummary>,
    /// The 6 SPEC summaries.
    pub spec: Vec<RunSummary>,
}

impl SuiteResults {
    /// All summaries in figure order (Agave then SPEC).
    pub fn all(&self) -> Vec<RunSummary> {
        self.agave.iter().chain(self.spec.iter()).cloned().collect()
    }

    /// Looks up one workload's summary by its figure label.
    pub fn by_label(&self, label: &str) -> Option<&RunSummary> {
        self.agave
            .iter()
            .chain(self.spec.iter())
            .find(|s| s.benchmark == label)
    }

    /// The Agave suite merged into one aggregate (the Table I input).
    pub fn agave_aggregate(&self) -> RunSummary {
        let mut merged = RunSummary::empty("agave-suite");
        for s in &self.agave {
            merged.merge(s);
        }
        merged
    }

    /// Serializes all summaries as a JSON object with `agave` and `spec`
    /// arrays in figure order.
    pub fn to_json(&self) -> String {
        json::Object::new()
            .field_raw(
                "agave",
                &json::array(self.agave.iter().map(|s| s.to_json())),
            )
            .field_raw("spec", &json::array(self.spec.iter().map(|s| s.to_json())))
            .finish()
    }
}

/// Runs every workload and collects the results.
///
/// Each workload boots a fresh simulated system (its own tracer), exactly
/// as each of the paper's measurements ran against a fresh gem5 instance.
pub fn run_suite(config: &SuiteConfig) -> SuiteResults {
    SuiteResults {
        agave: all_apps()
            .into_iter()
            .map(|app| run_app(app, config.app))
            .collect(),
        spec: spec_programs()
            .into_iter()
            .map(|program| run_spec(program, config.spec))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_25_workloads_in_order() {
        let all = all_workloads();
        assert_eq!(all.len(), 25);
        assert_eq!(all[0].label(), "aard.main");
        assert_eq!(all[18].label(), "vlc.mp4.view");
        assert_eq!(all[19].label(), "401.bzip2");
        assert_eq!(all[24].label(), "999.specrand");
    }

    #[test]
    fn run_single_workload_of_each_kind() {
        let config = SuiteConfig::quick();
        let app = run_workload(Workload::Agave(AppId::CountdownMain), &config);
        assert_eq!(app.benchmark, "countdown.main");
        assert!(app.total_instr > 0);
        let spec = run_workload(Workload::Spec(SpecProgram::Specrand), &config);
        assert_eq!(spec.benchmark, "999.specrand");
        assert!(spec.total_instr > 0);
    }
}
