//! The unified workload registry and suite runner.

use crate::engine::{self, EngineConfig, WorkloadOutcome};
use agave_apps::{all_apps, AppId};
use agave_spec::{spec_programs, SpecProgram};
use agave_trace::{json, RunSummary};
use std::fmt;

/// Any runnable workload: one of the 19 Agave configurations or one of the
/// six SPEC baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// An Agave application configuration.
    Agave(AppId),
    /// A SPEC CPU2006 baseline.
    Spec(SpecProgram),
}

impl Workload {
    /// The figure label.
    pub fn label(self) -> &'static str {
        match self {
            Workload::Agave(app) => app.label(),
            Workload::Spec(program) => program.label(),
        }
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// All 25 workloads in the figures' x-axis order (19 Agave, then 6 SPEC).
pub fn all_workloads() -> Vec<Workload> {
    let mut out: Vec<Workload> = all_apps().into_iter().map(Workload::Agave).collect();
    out.extend(spec_programs().into_iter().map(Workload::Spec));
    out
}

/// Sizing for a full suite run — the engine's [`EngineConfig`] under its
/// historical name.
pub type SuiteConfig = EngineConfig;

/// Runs one workload to completion and returns its summary.
///
/// Thin shim over [`engine::run`], kept for the many call sites that
/// only need the summary.
pub fn run_workload(workload: Workload, config: &SuiteConfig) -> RunSummary {
    engine::run(workload, config).summary
}

/// The results of a full suite run: one summary per workload, in figure
/// order. Serializable for archival via [`SuiteResults::to_json`].
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteResults {
    /// The 19 Agave summaries.
    pub agave: Vec<RunSummary>,
    /// The 6 SPEC summaries.
    pub spec: Vec<RunSummary>,
}

impl SuiteResults {
    /// Partitions engine outcomes (in canonical order) into the Agave and
    /// SPEC result vectors, preserving order within each.
    pub fn from_outcomes(outcomes: Vec<WorkloadOutcome>) -> Self {
        let mut results = SuiteResults {
            agave: Vec::new(),
            spec: Vec::new(),
        };
        for outcome in outcomes {
            match outcome.workload {
                Workload::Agave(_) => results.agave.push(outcome.summary),
                Workload::Spec(_) => results.spec.push(outcome.summary),
            }
        }
        results
    }

    /// All summaries in figure order (Agave then SPEC).
    pub fn all(&self) -> Vec<RunSummary> {
        self.agave.iter().chain(self.spec.iter()).cloned().collect()
    }

    /// Renders the per-workload host-timing table: wall time and
    /// simulation throughput (charged references per host second) for
    /// each run, plus suite totals. Timing is harness metadata — it never
    /// appears in figure or JSON artifacts (see
    /// [`RunSummary::wall_time_ns`]).
    pub fn render_timing(&self) -> String {
        let mut table = agave_telemetry::format::TimingTable::new();
        for s in self.agave.iter().chain(self.spec.iter()) {
            table.row(&s.benchmark, s.wall_time_ns, s.total_refs());
        }
        table.render("Per-workload host timing", "suite total")
    }

    /// Looks up one workload's summary by its figure label.
    pub fn by_label(&self, label: &str) -> Option<&RunSummary> {
        self.agave
            .iter()
            .chain(self.spec.iter())
            .find(|s| s.benchmark == label)
    }

    /// The Agave suite merged into one aggregate (the Table I input).
    pub fn agave_aggregate(&self) -> RunSummary {
        let mut merged = RunSummary::empty("agave-suite");
        for s in &self.agave {
            merged.merge(s);
        }
        merged
    }

    /// Serializes all summaries as a JSON object with `agave` and `spec`
    /// arrays in figure order.
    pub fn to_json(&self) -> String {
        json::Object::new()
            .field_raw(
                "agave",
                &json::array(self.agave.iter().map(|s| s.to_json())),
            )
            .field_raw("spec", &json::array(self.spec.iter().map(|s| s.to_json())))
            .finish()
    }
}

/// Runs every workload serially and collects the results.
///
/// Each workload boots a fresh simulated system (its own tracer), exactly
/// as each of the paper's measurements ran against a fresh gem5 instance.
/// Equivalent to [`run_suite_jobs`] with `jobs = 1`.
pub fn run_suite(config: &SuiteConfig) -> SuiteResults {
    run_suite_jobs(config, 1)
}

/// Runs every workload on up to `jobs` worker threads (0 = one per CPU)
/// and collects the results in canonical figure order.
///
/// Workloads are mutually independent, so results — figures, tables, and
/// JSON — are byte-identical to [`run_suite`] for any `jobs`.
pub fn run_suite_jobs(config: &SuiteConfig, jobs: usize) -> SuiteResults {
    SuiteResults::from_outcomes(engine::run_suite_parallel(&all_workloads(), config, jobs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_25_workloads_in_order() {
        let all = all_workloads();
        assert_eq!(all.len(), 25);
        assert_eq!(all[0].label(), "aard.main");
        assert_eq!(all[18].label(), "vlc.mp4.view");
        assert_eq!(all[19].label(), "401.bzip2");
        assert_eq!(all[24].label(), "999.specrand");
    }

    #[test]
    fn run_single_workload_of_each_kind() {
        let config = SuiteConfig::quick();
        let app = run_workload(Workload::Agave(AppId::CountdownMain), &config);
        assert_eq!(app.benchmark, "countdown.main");
        assert!(app.total_instr > 0);
        let spec = run_workload(Workload::Spec(SpecProgram::Specrand), &config);
        assert_eq!(spec.benchmark, "999.specrand");
        assert!(spec.total_instr > 0);
    }
}
