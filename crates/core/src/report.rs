//! Rendering a full experiment report (the EXPERIMENTS.md generator).

use crate::experiments::Experiments;

/// Renders the complete paper-vs-measured report as Markdown: the four
/// figures, Table I, and the claim checklist.
///
/// `EXPERIMENTS.md` in the repository root is produced by running
/// `cargo run --release --example suite_report -- --markdown` and pasting
/// this output.
pub fn experiments_markdown(experiments: &Experiments, config_note: &str) -> String {
    let mut out = String::new();
    out.push_str("# Agave-rs — Experiment Reproduction Report\n\n");
    out.push_str(&format!("Run configuration: {config_note}\n\n"));

    out.push_str("## Claim checklist (paper vs measured)\n\n");
    out.push_str("| Claim | Paper | Measured | Status |\n");
    out.push_str("|-------|-------|----------|--------|\n");
    for claim in experiments.check_claims() {
        out.push_str(&format!(
            "| {} | {} | {} | {} |\n",
            claim.description,
            claim.paper,
            claim.measured,
            if claim.pass { "✅" } else { "⚠️" }
        ));
    }
    out.push('\n');

    for (title, figure) in [
        (
            "Figure 1 — Instruction references by VMA region (%)",
            experiments.figure1(),
        ),
        (
            "Figure 2 — Data references by VMA region (%)",
            experiments.figure2(),
        ),
        (
            "Figure 3 — Instruction references by process (%)",
            experiments.figure3(),
        ),
        (
            "Figure 4 — Data references by process (%)",
            experiments.figure4(),
        ),
    ] {
        out.push_str(&format!("## {title}\n\n```text\n"));
        out.push_str(&figure.render());
        out.push_str("```\n\n");
    }

    out.push_str("## Table I — Threads by share of suite memory references\n\n```text\n");
    out.push_str(&experiments.table1_extended(10).render());
    out.push_str("```\n\n");

    out.push_str(
        "## Extension — static library profiles (the paper's closing observation)\n\n```text\n",
    );
    out.push_str(&crate::render_library_profiles(
        &experiments.library_profiles(),
    ));
    out.push_str("```\n");
    out
}

/// Writes the four figures as CSV files (`fig1.csv` … `fig4.csv`) plus
/// the suite summaries (`results.json`) into `dir`, creating it if needed.
///
/// # Errors
///
/// Returns any I/O error from creating the directory or writing files.
pub fn write_artifacts(experiments: &Experiments, dir: &std::path::Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for (name, figure) in [
        ("fig1.csv", experiments.figure1()),
        ("fig2.csv", experiments.figure2()),
        ("fig3.csv", experiments.figure3()),
        ("fig4.csv", experiments.figure4()),
    ] {
        std::fs::write(dir.join(name), figure.to_csv())?;
    }
    std::fs::write(dir.join("results.json"), experiments.results().to_json())?;
    std::fs::write(
        dir.join("table1.txt"),
        experiments.table1_extended(10).render(),
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::SuiteResults;
    use agave_trace::RunSummary;

    #[test]
    fn markdown_contains_all_sections() {
        let mut s = RunSummary::empty("demo.main");
        s.instr_by_region.insert("libdvm.so".into(), 10);
        s.refs_by_thread.insert("SurfaceFlinger".into(), 10);
        s.total_instr = 10;
        let ex = Experiments::new(SuiteResults {
            agave: vec![s],
            spec: vec![],
        });
        let md = experiments_markdown(&ex, "test config");
        for needle in [
            "# Agave-rs",
            "Claim checklist",
            "Figure 1",
            "Figure 2",
            "Figure 3",
            "Figure 4",
            "Table I",
            "test config",
            "demo.main",
        ] {
            assert!(md.contains(needle), "missing {needle}");
        }
    }
}
