//! The suite's registered benchmark cases (`agave bench`).
//!
//! Each case here wraps one of the workspace's standing performance
//! claims as an [`agave_registry::BenchCase`]: a stable name, the
//! parameter map that defines comparability, and a `run` producing raw
//! per-trial [`Measurement`]s. `agave bench run` aggregates the trials
//! (median + MAD), stamps commit + host fingerprint, and appends one
//! record per case to the append-only history that
//! `agave bench check` gates on.
//!
//! The cases mirror the standalone `agave-bench` targets — replay
//! encode/decode, parallel-decode speedup, hierarchy walk, sweep
//! amortization, serve request/upload throughput, disabled-telemetry
//! overhead — but sized so the whole quick registry runs in well under
//! a minute, because the point is a *history* dense enough for the
//! trailing-K baseline, not a one-shot headline number.

use crate::engine;
use crate::{record, run_workload_with_cache, AppId, GridSpec, SuiteConfig, Workload};
use agave_cache::HierarchyGeometry;
use agave_registry::{harness, BenchCase, Direction, Measurement, RunOpts, Tier};
use agave_replay::{TraceBuffer, TraceWriter};
use agave_serve::{Analysis, Client, ServeConfig, Server};
use agave_trace::{Reference, ReferenceSink, SharedSink};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::rc::Rc;

/// Every registered case, in `agave bench list` order.
pub fn registry() -> Vec<Box<dyn BenchCase>> {
    vec![
        Box::new(ReplayCodec),
        Box::new(ParallelDecode),
        Box::new(HierarchyWalk),
        Box::new(SweepAmortization),
        Box::new(ServeRoundtrip),
        Box::new(TelemetryOverhead),
    ]
}

/// The case with the given name, if registered.
pub fn find_case(name: &str) -> Option<Box<dyn BenchCase>> {
    registry().into_iter().find(|c| c.name() == name)
}

fn sizing(tier: Tier) -> (SuiteConfig, &'static str) {
    match tier {
        Tier::Quick => (SuiteConfig::quick(), "quick"),
        Tier::Full => (SuiteConfig::reference(), "reference"),
    }
}

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("agave-benchcase-{name}-{}", std::process::id()))
}

fn io_err<T>(context: &str, r: std::io::Result<T>) -> Result<T, String> {
    r.map_err(|e| format!("{context}: {e}"))
}

fn trace_err<T, E: std::fmt::Display>(context: &str, r: Result<T, E>) -> Result<T, String> {
    r.map_err(|e| format!("{context}: {e}"))
}

/// Buffers a replayed stream (for the pure-encoder measurement).
#[derive(Default)]
struct Collect {
    refs: Vec<Reference>,
}

impl ReferenceSink for Collect {
    fn on_reference(&mut self, r: &Reference) {
        self.refs.push(*r);
    }

    fn on_batch(&mut self, batch: &[Reference]) {
        self.refs.extend_from_slice(batch);
    }
}

/// Counts delivered reference blocks (the denominator of refs/s).
#[derive(Default)]
struct CountingSink {
    blocks: u64,
    batches: u64,
}

impl ReferenceSink for CountingSink {
    fn on_reference(&mut self, r: &Reference) {
        let _ = r;
        self.blocks += 1;
    }

    fn on_batch(&mut self, batch: &[Reference]) {
        self.blocks += batch.len() as u64;
        self.batches += 1;
    }
}

/// `.agtrace` codec throughput: pure encode and serial decode MB/s
/// over a recorded `gallery.mp4.view` stream, plus the format's
/// bytes-per-record compression.
struct ReplayCodec;

impl BenchCase for ReplayCodec {
    fn name(&self) -> &str {
        "replay_codec"
    }

    fn description(&self) -> &str {
        "trace encode/decode MB/s and bytes per record (gallery.mp4.view)"
    }

    fn params(&self, tier: Tier) -> BTreeMap<String, String> {
        BTreeMap::from([
            ("workload".into(), "gallery.mp4.view".into()),
            ("sizing".into(), sizing(tier).1.into()),
        ])
    }

    fn run(&self, opts: &RunOpts) -> Result<Vec<Measurement>, String> {
        let (config, _) = sizing(opts.tier);
        let workload = Workload::Agave(AppId::GalleryMp4View);
        let path = scratch("codec.agtrace");
        let stats = trace_err("record", record::record_workload(workload, &config, &path))?;
        // Decode once so the encoder can be timed without the decoder
        // in the loop.
        let collected = Rc::new(RefCell::new(Collect::default()));
        let buf = trace_err("open", TraceBuffer::open(&path))?;
        let outcome = trace_err("decode", buf.replay(&[collected.clone() as SharedSink], 1))?;
        let refs = std::mem::take(&mut collected.borrow_mut().refs);

        let mut out = Vec::new();
        for t in harness::trial_times(opts.warmup, opts.trials, || {
            let mut w = TraceWriter::new(Vec::new(), &outcome.label).expect("in-memory writer");
            for r in &refs {
                w.append(r);
            }
            w.finish(&outcome.directory, &outcome.baseline)
                .expect("finish in-memory trace")
        }) {
            out.push(Measurement::new(
                "encode_mb_per_sec",
                "MB/s",
                Direction::HigherIsBetter,
                stats.file_bytes as f64 / 1e6 / t.as_secs_f64(),
            ));
        }
        for t in harness::trial_times(opts.warmup, opts.trials, || {
            record::replay_trace_summary(&path, 1).expect("replay summary")
        }) {
            out.push(Measurement::new(
                "decode_mb_per_sec",
                "MB/s",
                Direction::HigherIsBetter,
                stats.file_bytes as f64 / 1e6 / t.as_secs_f64(),
            ));
        }
        out.push(Measurement::new(
            "bytes_per_record",
            "B/rec",
            Direction::LowerIsBetter,
            stats.bytes_per_record(),
        ));
        std::fs::remove_file(&path).ok();
        Ok(out)
    }
}

/// Parallel decode (`--jobs 0`) throughput and its speedup over the
/// serial decode of the same trace.
struct ParallelDecode;

impl BenchCase for ParallelDecode {
    fn name(&self) -> &str {
        "parallel_decode"
    }

    fn description(&self) -> &str {
        "parallel trace decode MB/s and speedup vs serial (all CPUs)"
    }

    fn params(&self, tier: Tier) -> BTreeMap<String, String> {
        BTreeMap::from([
            ("workload".into(), "gallery.mp4.view".into()),
            ("sizing".into(), sizing(tier).1.into()),
            ("jobs".into(), "0".into()),
        ])
    }

    fn run(&self, opts: &RunOpts) -> Result<Vec<Measurement>, String> {
        let (config, _) = sizing(opts.tier);
        let workload = Workload::Agave(AppId::GalleryMp4View);
        let path = scratch("parallel.agtrace");
        let stats = trace_err("record", record::record_workload(workload, &config, &path))?;
        let serial = harness::trial_times(opts.warmup, opts.trials, || {
            record::replay_trace_summary(&path, 1).expect("serial replay")
        });
        let parallel = harness::trial_times(opts.warmup, opts.trials, || {
            record::replay_trace_summary(&path, 0).expect("parallel replay")
        });
        let mut out = Vec::new();
        for (s, p) in serial.iter().zip(&parallel) {
            out.push(Measurement::new(
                "decode_mb_per_sec_parallel",
                "MB/s",
                Direction::HigherIsBetter,
                stats.file_bytes as f64 / 1e6 / p.as_secs_f64(),
            ));
            out.push(Measurement::new(
                "speedup_vs_serial",
                "x",
                Direction::HigherIsBetter,
                s.as_secs_f64() / p.as_secs_f64(),
            ));
        }
        std::fs::remove_file(&path).ok();
        Ok(out)
    }
}

/// The cache-hierarchy walk: references per second through the
/// cortex-a9 `MemoryHierarchy` on a live `countdown.main` run.
struct HierarchyWalk;

impl BenchCase for HierarchyWalk {
    fn name(&self) -> &str {
        "hierarchy_walk"
    }

    fn description(&self) -> &str {
        "cortex-a9 hierarchy walk refs/s (countdown.main, live)"
    }

    fn params(&self, tier: Tier) -> BTreeMap<String, String> {
        BTreeMap::from([
            ("workload".into(), "countdown.main".into()),
            ("sizing".into(), sizing(tier).1.into()),
            ("preset".into(), "cortex-a9".into()),
        ])
    }

    fn run(&self, opts: &RunOpts) -> Result<Vec<Measurement>, String> {
        let (config, _) = sizing(opts.tier);
        let workload = Workload::Agave(AppId::CountdownMain);
        let geometry = HierarchyGeometry::cortex_a9();
        let counter = Rc::new(RefCell::new(CountingSink::default()));
        engine::run_observed(workload, &config, vec![counter.clone()]);
        let blocks = counter.borrow().blocks;
        Ok(harness::trial_times(opts.warmup, opts.trials, || {
            run_workload_with_cache(workload, &config, geometry)
        })
        .into_iter()
        .map(|t| {
            Measurement::new(
                "refs_per_sec",
                "refs/s",
                Direction::HigherIsBetter,
                blocks as f64 / t.as_secs_f64(),
            )
        })
        .collect())
    }
}

/// Design-space sweep amortization: one decode fanned to a 2×2×2 grid
/// vs the same 8 cells as sequential standalone replays.
struct SweepAmortization;

const SWEEP_GRID: &str = "size=8k,16k:assoc=2,4:line=32,64";

impl BenchCase for SweepAmortization {
    fn name(&self) -> &str {
        "sweep_amortization"
    }

    fn description(&self) -> &str {
        "sweep vs sequential replays over a 2x2x2 grid (countdown.main)"
    }

    fn params(&self, tier: Tier) -> BTreeMap<String, String> {
        BTreeMap::from([
            ("workload".into(), "countdown.main".into()),
            ("sizing".into(), sizing(tier).1.into()),
            ("grid".into(), SWEEP_GRID.into()),
            ("jobs".into(), "0".into()),
        ])
    }

    fn run(&self, opts: &RunOpts) -> Result<Vec<Measurement>, String> {
        let (config, _) = sizing(opts.tier);
        let workload = Workload::Agave(AppId::CountdownMain);
        let path = scratch("sweep.agtrace");
        let stats = trace_err("record", record::record_workload(workload, &config, &path))?;
        let grid = GridSpec::parse(SWEEP_GRID)?;
        let cells = grid.cells()?;
        let sequential = harness::trial_times(opts.warmup, opts.trials, || {
            cells
                .iter()
                .map(|&g| record::replay_trace_cache(&path, g, 1).expect("replay cell"))
                .collect::<Vec<_>>()
        });
        let sweep = harness::trial_times(opts.warmup, opts.trials, || {
            crate::sweep_path(&path, &grid, 0).expect("sweep")
        });
        let cell_refs = stats.records * cells.len() as u64;
        let mut out = Vec::new();
        for (seq, sw) in sequential.iter().zip(&sweep) {
            out.push(Measurement::new(
                "sweep_vs_sequential",
                "x",
                Direction::HigherIsBetter,
                seq.as_secs_f64() / sw.as_secs_f64(),
            ));
            out.push(Measurement::new(
                "cell_refs_per_sec",
                "refs/s",
                Direction::HigherIsBetter,
                cell_refs as f64 / sw.as_secs_f64(),
            ));
        }
        std::fs::remove_file(&path).ok();
        Ok(out)
    }
}

/// The serve daemon under a small fan-out: analyze requests per second
/// and upload ingest MB/s against a loopback server.
struct ServeRoundtrip;

const SERVE_CLIENTS: usize = 8;
const SERVE_REQUESTS_EACH: usize = 2;
/// Serial pings per trial of the tracing-overhead measurement. Ping is
/// the lightest verb, so per-request tracing cost is largest relative
/// to it — the measured overhead is an upper bound for real verbs.
const STATS_OVERHEAD_PINGS: usize = 200;

impl BenchCase for ServeRoundtrip {
    fn name(&self) -> &str {
        "serve_roundtrip"
    }

    fn description(&self) -> &str {
        "serve analyze req/s, upload MB/s, request-tracing overhead % (loopback)"
    }

    fn params(&self, tier: Tier) -> BTreeMap<String, String> {
        BTreeMap::from([
            ("workload".into(), "gallery.mp4.view".into()),
            ("sizing".into(), sizing(tier).1.into()),
            ("clients".into(), SERVE_CLIENTS.to_string()),
            ("requests_each".into(), SERVE_REQUESTS_EACH.to_string()),
        ])
    }

    fn run(&self, opts: &RunOpts) -> Result<Vec<Measurement>, String> {
        let (config, _) = sizing(opts.tier);
        let workload = Workload::Agave(AppId::GalleryMp4View);
        let path = scratch("serve.agtrace");
        trace_err("record", record::record_workload(workload, &config, &path))?;
        let file_bytes = io_err("trace metadata", std::fs::metadata(&path))?.len();

        let server = trace_err(
            "bind",
            Server::bind(ServeConfig {
                addr: "127.0.0.1:0".to_owned(),
                jobs: 2,
                queue_cap: SERVE_CLIENTS * 2,
                ..ServeConfig::default()
            }),
        )?;
        let addr = server.local_addr().to_string();
        let total = (SERVE_CLIENTS * SERVE_REQUESTS_EACH) as f64;
        let mut out = Vec::new();
        std::thread::scope(|scope| {
            let daemon = scope.spawn(|| server.run());
            let client = Client::new(addr.clone());
            client.upload("bench", &path).expect("seed upload");
            for t in harness::trial_times(opts.warmup, opts.trials, || {
                let client = Client::new(addr.clone());
                client.upload("bench-upload", &path).expect("timed upload")
            }) {
                out.push(Measurement::new(
                    "upload_mb_per_sec",
                    "MB/s",
                    Direction::HigherIsBetter,
                    file_bytes as f64 / 1e6 / t.as_secs_f64(),
                ));
            }
            for t in harness::trial_times(opts.warmup, opts.trials, || {
                std::thread::scope(|clients| {
                    for _ in 0..SERVE_CLIENTS {
                        let addr = addr.clone();
                        clients.spawn(move || {
                            let client = Client::new(addr);
                            for _ in 0..SERVE_REQUESTS_EACH {
                                client
                                    .analyze("bench", &Analysis::Summary)
                                    .expect("analyze");
                            }
                        });
                    }
                });
            }) {
                out.push(Measurement::new(
                    "requests_per_sec",
                    "req/s",
                    Direction::HigherIsBetter,
                    total / t.as_secs_f64(),
                ));
            }
            Client::new(addr.clone()).shutdown().expect("shutdown");
            daemon.join().expect("daemon");
        });

        // Per-request tracing overhead: best-of serial ping batches
        // with request tracing on vs off. Best-of (not median) because
        // scheduling noise only ever adds time; the minima are the
        // cleanest estimate of the intrinsic cost difference.
        let ping_batch = |tracing: bool| -> Result<f64, String> {
            let server = trace_err(
                "bind",
                Server::bind(ServeConfig {
                    addr: "127.0.0.1:0".to_owned(),
                    jobs: 1,
                    trace_requests: tracing,
                    ..ServeConfig::default()
                }),
            )?;
            let addr = server.local_addr().to_string();
            let mut best = f64::INFINITY;
            std::thread::scope(|scope| {
                let daemon = scope.spawn(|| server.run());
                let client = Client::new(addr.clone());
                for t in harness::trial_times(opts.warmup, opts.trials, || {
                    for _ in 0..STATS_OVERHEAD_PINGS {
                        client.ping().expect("ping");
                    }
                }) {
                    best = best.min(t.as_secs_f64());
                }
                client.shutdown().expect("shutdown");
                daemon.join().expect("daemon");
            });
            Ok(best)
        };
        let traced = ping_batch(true)?;
        let untraced = ping_batch(false)?;
        out.push(Measurement::new(
            "stats_overhead_pct",
            "%",
            Direction::LowerIsBetter,
            (traced - untraced) / untraced * 100.0,
        ));

        std::fs::remove_file(&path).ok();
        Ok(out)
    }
}

/// Disabled-telemetry overhead: the structural bound
/// `gates × per_gate_ns / run_ns`, as a percentage of a live run.
struct TelemetryOverhead;

impl BenchCase for TelemetryOverhead {
    fn name(&self) -> &str {
        "telemetry_overhead"
    }

    fn description(&self) -> &str {
        "disabled-path telemetry overhead % (structural gate bound)"
    }

    fn params(&self, tier: Tier) -> BTreeMap<String, String> {
        BTreeMap::from([
            ("workload".into(), "countdown.main".into()),
            ("sizing".into(), sizing(tier).1.into()),
        ])
    }

    fn run(&self, opts: &RunOpts) -> Result<Vec<Measurement>, String> {
        if agave_telemetry::enabled() {
            return Err("telemetry must be disabled while measuring its disabled cost".into());
        }
        let (config, _) = sizing(opts.tier);
        let workload = Workload::Agave(AppId::CountdownMain);
        // One gate = one relaxed atomic load + branch; count the
        // batch-granular gates a run performs (see the
        // telemetry_overhead bench target for the derivation).
        let counter = Rc::new(RefCell::new(CountingSink::default()));
        engine::run_observed(workload, &config, vec![counter.clone()]);
        let gates = counter.borrow().batches * 2 + 16;

        const CALIBRATE_ITERS: u64 = 2_000_000;
        let mut out = Vec::new();
        for run in harness::trial_times(opts.warmup, opts.trials, || engine::run(workload, &config))
        {
            let started = std::time::Instant::now();
            let mut hits = 0u64;
            for _ in 0..CALIBRATE_ITERS {
                if std::hint::black_box(agave_telemetry::enabled()) {
                    hits += 1;
                }
            }
            std::hint::black_box(hits);
            let per_gate_ns = started.elapsed().as_nanos() as f64 / CALIBRATE_ITERS as f64;
            out.push(Measurement::new(
                "disabled_overhead_pct",
                "%",
                Direction::LowerIsBetter,
                gates as f64 * per_gate_ns / run.as_nanos() as f64 * 100.0,
            ));
        }
        Ok(out)
    }
}

/// Resolves the history file path: explicit flag > `AGAVE_BENCH_HISTORY`
/// env > `bench_history.jsonl` in the working directory.
pub fn history_path(flag: Option<&str>) -> PathBuf {
    flag.map(PathBuf::from)
        .or_else(|| std::env::var("AGAVE_BENCH_HISTORY").ok().map(PathBuf::from))
        .unwrap_or_else(|| PathBuf::from("bench_history.jsonl"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use agave_registry::aggregate;

    #[test]
    fn registry_names_are_unique_and_stable() {
        let names: Vec<String> = registry().iter().map(|c| c.name().to_owned()).collect();
        assert_eq!(
            names,
            [
                "replay_codec",
                "parallel_decode",
                "hierarchy_walk",
                "sweep_amortization",
                "serve_roundtrip",
                "telemetry_overhead",
            ]
        );
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names, dedup);
        assert!(find_case("replay_codec").is_some());
        assert!(find_case("nope").is_none());
    }

    #[test]
    fn params_pin_the_tier_sizing() {
        for case in registry() {
            let quick = case.params(Tier::Quick);
            let full = case.params(Tier::Full);
            assert_eq!(quick.get("sizing").map(String::as_str), Some("quick"));
            assert_eq!(full.get("sizing").map(String::as_str), Some("reference"));
            assert!(!case.description().is_empty());
        }
    }

    #[test]
    fn hierarchy_walk_produces_aggregatable_trials() {
        let case = HierarchyWalk;
        let opts = RunOpts {
            tier: Tier::Quick,
            trials: 2,
            warmup: 0,
        };
        let measurements = case.run(&opts).expect("case runs");
        assert_eq!(measurements.len(), 2);
        let stats = aggregate(&measurements);
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].name, "refs_per_sec");
        assert_eq!(stats[0].trials, 2);
        assert!(stats[0].median > 0.0);
    }

    #[test]
    fn history_path_resolution_order() {
        assert_eq!(
            history_path(Some("custom.jsonl")),
            PathBuf::from("custom.jsonl")
        );
        // Without a flag it falls back to the default name (the env
        // override is exercised by the CI job).
        if std::env::var("AGAVE_BENCH_HISTORY").is_err() {
            assert_eq!(history_path(None), PathBuf::from("bench_history.jsonl"));
        }
    }
}
