//! Recording workloads into `.agtrace` files and replaying them —
//! the orchestration layer over `agave-replay`.
//!
//! One recorded run is a reusable artifact: any number of later
//! analyses (cache sweeps under different geometries, summary
//! reconstruction, future observers) replay the file instead of
//! re-simulating the workload. The correctness contract — replay output
//! is byte-identical to live output — is documented in DESIGN.md §12
//! and asserted by `tests/replay_roundtrip.rs`.

use crate::engine::{self, EngineConfig};
use crate::suite::Workload;
use agave_cache::{CacheReport, HierarchyGeometry};
use agave_replay::{SummaryAccumulator, TraceBuffer, TraceError, TraceStats, TraceWriter};
use agave_trace::{RunSummary, SharedSink};
use std::cell::RefCell;
use std::path::{Path, PathBuf};
use std::rc::Rc;

/// Runs `workload` once with a [`TraceWriter`] attached and writes the
/// captured stream (plus directory and boot baseline) to `path`.
///
/// Returns the recording's [`TraceStats`] (records, words, file bytes).
pub fn record_workload(
    workload: Workload,
    config: &EngineConfig,
    path: &Path,
) -> Result<TraceStats, TraceError> {
    record_workload_chunked(workload, config, path, agave_replay::format::CHUNK_RECORDS)
}

/// [`record_workload`] with an explicit chunk size — the `agave record
/// --chunk-records N` path. Chunks are the unit of parallel decode and
/// corruption containment; the default is right for almost everyone.
pub fn record_workload_chunked(
    workload: Workload,
    config: &EngineConfig,
    path: &Path,
    chunk_records: usize,
) -> Result<TraceStats, TraceError> {
    let mut span = agave_telemetry::Span::enter_labeled("record encode", workload.label());
    let writer = Rc::new(RefCell::new(TraceWriter::create_chunked(
        path,
        workload.label(),
        chunk_records,
    )?));
    let (outcome, baseline) =
        engine::run_traced(workload, config, vec![writer.clone() as SharedSink]);
    let stats = writer.borrow_mut().finish(&outcome.directory, &baseline)?;
    span.set_refs(stats.words);
    Ok(stats)
}

/// The conventional trace file name for a workload: `<label>.agtrace`
/// under `dir`.
pub fn trace_path(dir: &Path, workload: Workload) -> PathBuf {
    dir.join(format!("{}.agtrace", workload.label()))
}

/// Records every workload in `workloads` into `dir` (created if
/// missing), fanning out across up to `jobs` threads — each worker
/// simulates private worlds and writes its own files, so recordings are
/// deterministic for any `jobs`. `chunk_records` is the per-trace chunk
/// size (see [`record_workload_chunked`]).
///
/// Returns one `(workload, result)` row per input, in input order.
#[allow(clippy::type_complexity)]
pub fn record_suite(
    workloads: &[Workload],
    config: &EngineConfig,
    dir: &Path,
    jobs: usize,
    chunk_records: usize,
) -> Result<Vec<(Workload, Result<TraceStats, TraceError>)>, TraceError> {
    std::fs::create_dir_all(dir)?;
    // Same telemetry coordinator shape as `engine::run_suite_parallel`:
    // workers' spans stitch under one "record suite" span, with a live
    // heartbeat on stderr. All inert when telemetry is disabled.
    let mut suite_span = agave_telemetry::Span::enter("record suite");
    let suite_id = suite_span.id();
    if agave_telemetry::enabled() {
        agave_telemetry::metrics::gauge("suite.jobs").set(engine::effective_jobs(jobs) as u64);
    }
    let heartbeat = agave_telemetry::Heartbeat::start("record", workloads.len());
    let rows = engine::parallel_map(workloads.len(), jobs, |i| {
        let _stitch = agave_telemetry::set_thread_parent(suite_id);
        let workload = workloads[i];
        heartbeat.begin_item(workload.label());
        let result =
            record_workload_chunked(workload, config, &trace_path(dir, workload), chunk_records);
        heartbeat.finish_item(result.as_ref().map_or(0, |s| s.words));
        (workload, result)
    });
    suite_span.set_refs(heartbeat.refs());
    // Close the span before the heartbeat join (see run_suite_parallel).
    drop(suite_span);
    heartbeat.finish();
    Ok(rows)
}

/// Replays `path` and rebuilds the recorded run's [`RunSummary`] —
/// byte-identical (as JSON) to the live run's, for any decode `jobs`
/// (0 = one per CPU, 1 = serial).
pub fn replay_trace_summary(path: &Path, jobs: usize) -> Result<RunSummary, TraceError> {
    agave_replay::replay_summary(path, jobs)
}

/// Replays `path` through a fresh hierarchy of `geometry` and returns
/// the same [`CacheReport`] a live [`crate::run_workload_with_cache`]
/// of the recorded workload yields — without re-simulating the
/// workload. Delegates to the analysis registry's shared pass
/// ([`agave_analysis::replay_cache`]), the one implementation the CLI,
/// the serve daemon, and sweeps all resolve through.
pub fn replay_trace_cache(
    path: &Path,
    geometry: HierarchyGeometry,
    jobs: usize,
) -> Result<CacheReport, TraceError> {
    agave_analysis::replay_cache(path, geometry, jobs)
}

/// Replays `path` into caller-provided sinks (any [`SharedSink`]s) and
/// additionally rebuilds the run summary in the same pass.
pub fn replay_trace_observed(
    path: &Path,
    sinks: Vec<SharedSink>,
    jobs: usize,
) -> Result<(RunSummary, agave_replay::ReplayOutcome), TraceError> {
    let buf = TraceBuffer::open(path)?;
    let acc = Rc::new(RefCell::new(SummaryAccumulator::new()));
    let mut all = sinks;
    all.push(acc.clone() as SharedSink);
    let outcome = buf.replay(&all, jobs)?;
    let summary = acc.borrow().build(&outcome);
    Ok((summary, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use agave_spec::SpecProgram;

    fn temp_file(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("agave-record-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn record_then_replay_summary_matches_live() {
        let path = temp_file("specrand.agtrace");
        let config = EngineConfig::quick();
        let workload = Workload::Spec(SpecProgram::Specrand);
        let stats = record_workload(workload, &config, &path).unwrap();
        assert!(stats.records > 0);
        assert!(stats.bytes_per_record() > 0.0);
        let live = engine::run(workload, &config).summary;
        let replayed = replay_trace_summary(&path, 1).unwrap();
        assert_eq!(replayed, live);
        assert_eq!(replayed.to_json(), live.to_json());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn custom_chunk_sizes_replay_byte_identically() {
        let config = EngineConfig::quick();
        let workload = Workload::Spec(SpecProgram::Specrand);
        let default_path = temp_file("chunk-default.agtrace");
        record_workload(workload, &config, &default_path).unwrap();
        let expected = replay_trace_summary(&default_path, 1).unwrap().to_json();
        for chunk_records in [64usize, 512, 100_000] {
            let path = temp_file(&format!("chunk-{chunk_records}.agtrace"));
            let stats = record_workload_chunked(workload, &config, &path, chunk_records).unwrap();
            assert!(stats.records > 0);
            for jobs in [1, 8] {
                let replayed = replay_trace_summary(&path, jobs).unwrap().to_json();
                assert_eq!(
                    replayed, expected,
                    "chunk_records={chunk_records} jobs={jobs}"
                );
            }
            std::fs::remove_file(&path).ok();
        }
        std::fs::remove_file(&default_path).ok();
    }

    #[test]
    fn replay_of_missing_file_is_an_io_error() {
        let err = replay_trace_summary(Path::new("/nonexistent/never.agtrace"), 1).unwrap_err();
        assert!(matches!(err, TraceError::Io(_)));
    }
}
