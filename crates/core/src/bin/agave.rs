//! `agave` — the suite's command-line front end.
//!
//! ```text
//! agave list                            # all 25 workloads
//! agave run <label> [--quick]           # one workload, summary to stdout
//! agave suite [--quick] [--jobs N] [--json F]  # figures 1–4, Table I, claims
//! agave claims [--quick] [--jobs N]     # just the claim checklist
//! agave cache <label> [--preset P]      # per-region cache/TLB breakdown
//! agave cache --fig5 [--preset P] [--jobs N]   # all 25 workloads, one row each
//! agave record <label> [-o F] [--chunk-records N]  # capture the reference stream to .agtrace
//! agave record --all [--dir D] [--jobs N]      # record the whole suite
//! agave replay <F> [--cache G|--summary|--validate] [--jobs N]  # re-run analyses off a trace file
//! agave sweep <F> --grid size=16k,32k:assoc=2,4:line=32,64 [--jobs N]  # design-space sweep
//! agave stats <telemetry.json>          # span tree + metric tables from a capture
//! agave serve [--addr A] [--jobs N]     # multi-tenant replay/analysis daemon
//! agave client <upload|list|analyze|sweep|ping|stats|shutdown> …  # talk to a daemon
//! agave top <addr> [--interval MS]      # live daemon dashboard (polls STATS)
//! agave bench list|run|history|check    # durable benchmark registry + regression gate
//! ```
//!
//! Geometry names (`--preset`, `--cache`, sweep cells) resolve through
//! `HierarchyGeometry::by_name`: a built-in preset (`cortex-a9`,
//! `tiny`) or an L1 cell spec like `size=16k,assoc=2,line=32`.
//! `agave sweep` decodes a recorded trace *once* and fans every chunk
//! out to one hierarchy per grid cell — each cell byte-identical to a
//! standalone `agave replay --cache <cell>` of the same trace.
//!
//! `--jobs N` fans the mutually independent workloads out across N
//! threads (`--jobs 0` = one per CPU). Figures, tables, and JSON are
//! byte-identical for any N; only wall time changes. Replay output is
//! byte-identical to the live run that recorded the trace (wall-time
//! fields excepted — the simulation never re-runs).
//!
//! `--telemetry FILE` (on run/suite/claims/cache/record/replay) turns
//! the self-profiler on: spans, metrics, and live heartbeats. The
//! capture lands in FILE as versioned JSON (Perfetto-loadable; see
//! `--telemetry-format`), and analysis output on stdout stays
//! byte-identical — telemetry only ever writes to its own file and
//! stderr.

use agave_core::{
    all_workloads, cli, engine, experiments_markdown, record, run_workload_with_cache, Experiments,
    Fig5Cache, HierarchyGeometry, RunSummary, SuiteConfig, Workload,
};
use agave_serve::{Analysis, Client, ServeConfig, Server};
use std::path::{Path, PathBuf};

fn usage() -> ! {
    eprintln!(
        "usage:\n  agave list\n  agave run <workload> [--quick]\n  \
         agave suite [--quick] [--jobs N] [--markdown] [--json FILE]\n  \
         agave claims [--quick] [--jobs N]\n  \
         agave cache <workload> [--preset NAME] [--quick] [--json] [--top N]\n  \
         agave cache --fig5 [--preset NAME] [--quick] [--json] [--jobs N]\n  \
         agave record <workload> [-o FILE] [--quick] [--chunk-records N]\n  \
         agave record --all [--dir DIR] [--quick] [--jobs N] [--chunk-records N]\n  \
         agave replay <file.agtrace> [--summary] [--cache GEOMETRY] [--validate] [--json] [--top N] [--jobs N]\n  \
         agave sweep <file.agtrace> --grid size=16k,32k:assoc=2,4:line=32,64 [--jobs N] [--json]\n  \
         agave stats <telemetry.json>\n  \
         agave serve [--addr HOST:PORT] [--jobs N] [--decode-jobs N] [--queue N] [--spool DIR] [--flight-capacity N] [--slow-ms T]\n  \
         agave client upload <name> <file.agtrace> [--addr A]\n  \
         agave client analyze <name> <summary|cache GEOMETRY|sketch> [--addr A]\n  \
         agave client sweep <name> <grid> [--addr A]\n  \
         agave client stats [--format json|prom] [--recent N] [--errors|--slow] [--addr A]\n  \
         agave client list|ping|shutdown [--addr A]\n  \
         agave top <addr> [--interval MS] [--count N] [--recent N]\n  \
         agave bench list\n  \
         agave bench run [CASE] [--quick] [--trials N] [--warmup N] [--history FILE]\n  \
         agave bench history [CASE] [--last N] [--history FILE]\n  \
         agave bench check [--json] [--window K] [--mad-factor X] [--min-pct P] [--history FILE]\n\
         geometries: {} — or an L1 cell spec size=16k,assoc=2,line=32\n\
         --jobs N: run workloads (or decode chunks, on replay verbs) on N threads (0 = one per CPU; default 1)\n\
         --chunk-records N: records per trace chunk (default 4096; chunks are the unit of parallel decode)\n\
         --telemetry FILE: capture spans+metrics to FILE (any verb that runs workloads)\n\
         --telemetry-format json|chrome|prom (default json)",
        agave_core::HierarchyGeometry::PRESET_NAMES.join(", ")
    );
    std::process::exit(2);
}

fn config(args: &[String]) -> (SuiteConfig, &'static str) {
    if args.iter().any(|a| a == "--quick") {
        (SuiteConfig::quick(), "quick")
    } else {
        (SuiteConfig::reference(), "reference")
    }
}

/// Parses `--jobs N` (default 1 = serial; 0 = one per CPU).
fn jobs(args: &[String]) -> usize {
    args.iter()
        .position(|a| a == "--jobs")
        .map(|pos| {
            args.get(pos + 1)
                .and_then(|n| n.parse().ok())
                .unwrap_or_else(|| usage())
        })
        .unwrap_or(1)
}

/// The value following `--flag`, if the flag is present (missing value
/// is a usage error).
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).map(|pos| {
        args.get(pos + 1)
            .map(String::as_str)
            .unwrap_or_else(|| usage())
    })
}

/// The first bare argument that is not the value of one of the listed
/// value-taking flags.
fn bare_arg<'a>(args: &'a [String], value_flags: &[&str]) -> Option<&'a str> {
    let taken: Vec<usize> = args
        .iter()
        .enumerate()
        .filter(|(_, a)| value_flags.contains(&a.as_str()))
        .map(|(i, _)| i + 1)
        .collect();
    args.iter()
        .enumerate()
        .find(|(i, a)| !a.starts_with('-') && !taken.contains(i))
        .map(|(_, a)| a.as_str())
}

/// The `--telemetry` output request, parsed once in `main` before
/// dispatch (so the enable flag is set before any workload runs) and
/// finished once after.
struct TelemetryOut {
    path: Option<String>,
    format: agave_telemetry::TelemetryFormat,
}

impl TelemetryOut {
    fn from_args(args: &[String]) -> TelemetryOut {
        let path = flag_value(args, "--telemetry").map(str::to_string);
        let format = flag_value(args, "--telemetry-format")
            .map(|f| {
                agave_telemetry::TelemetryFormat::parse(f).unwrap_or_else(|| {
                    eprintln!("unknown telemetry format {f:?}; use json, chrome, or prom");
                    std::process::exit(2);
                })
            })
            .unwrap_or(agave_telemetry::TelemetryFormat::Json);
        if path.is_some() {
            agave_telemetry::set_enabled(true);
        }
        TelemetryOut { path, format }
    }

    /// Captures and writes the snapshot, if `--telemetry` was given.
    fn finish(self) {
        if let Some(path) = self.path {
            agave_telemetry::set_enabled(false);
            let snapshot = agave_telemetry::capture();
            match snapshot.write(Path::new(&path), self.format) {
                Ok(()) => eprintln!("wrote telemetry to {path}"),
                Err(err) => {
                    eprintln!("telemetry: {path}: {err}");
                    std::process::exit(1);
                }
            }
        }
    }
}

fn find(label: &str) -> Workload {
    all_workloads()
        .into_iter()
        .find(|w| w.label() == label)
        .unwrap_or_else(|| {
            eprintln!("unknown workload {label:?}; try `agave list`");
            std::process::exit(2);
        })
}

fn cmd_list() {
    println!("Agave workloads (19):");
    for w in all_workloads().iter().take(19) {
        println!("  {w}");
    }
    println!("SPEC CPU2006 baselines (6):");
    for w in all_workloads().iter().skip(19) {
        println!("  {w}");
    }
}

fn cmd_run(args: &[String]) {
    let label =
        bare_arg(args, &["--telemetry", "--telemetry-format", "--jobs"]).unwrap_or_else(|| usage());
    let (config, note) = config(args);
    let summary = engine::run(find(label), &config).summary;
    println!(
        "{} ({note}): {} instr + {} data references",
        summary.benchmark, summary.total_instr, summary.total_data
    );
    println!(
        "wall {:.2} ms · {:.3e} refs/sec",
        summary.wall_time_ns as f64 / 1e6,
        summary.refs_per_sec()
    );
    print_breakdowns(&summary);
}

fn print_breakdowns(summary: &RunSummary) {
    println!(
        "processes {} · threads {} · code regions {} · data regions {}",
        summary.spawned_processes,
        summary.spawned_threads,
        summary.code_region_count(),
        summary.data_region_count()
    );
    for (title, map, total) in [
        (
            "instr by region",
            &summary.instr_by_region,
            summary.total_instr,
        ),
        (
            "data by region",
            &summary.data_by_region,
            summary.total_data,
        ),
        (
            "instr by process",
            &summary.instr_by_process,
            summary.total_instr,
        ),
        (
            "refs by thread",
            &summary.refs_by_thread,
            summary.total_instr + summary.total_data,
        ),
    ] {
        println!("-- {title}:");
        let mut rows: Vec<_> = map.iter().collect();
        rows.sort_by(|a, b| b.1.cmp(a.1));
        for (name, count) in rows.into_iter().take(7) {
            println!(
                "  {:>5.1}%  {name}",
                *count as f64 * 100.0 / total.max(1) as f64
            );
        }
    }
}

fn cmd_suite(args: &[String]) -> i32 {
    let (config, note) = config(args);
    let jobs = jobs(args);
    eprintln!(
        "running 25 workloads ({note}, {} thread{})…",
        engine::effective_jobs(jobs),
        if engine::effective_jobs(jobs) == 1 {
            ""
        } else {
            "s"
        }
    );
    let experiments = Experiments::from_config_jobs(&config, jobs);
    if let Some(pos) = args.iter().position(|a| a == "--json") {
        let path = args
            .get(pos + 1)
            .map(String::as_str)
            .unwrap_or_else(|| usage());
        cli::or_fail(
            "suite",
            Path::new(path),
            std::fs::write(path, experiments.results().to_json()),
        );
        eprintln!("wrote {path}");
    }
    if args.iter().any(|a| a == "--markdown") {
        println!("{}", experiments_markdown(&experiments, note));
        return 0;
    }
    println!("{}", experiments.figure1().render());
    println!("{}", experiments.figure2().render());
    println!("{}", experiments.figure3().render());
    println!("{}", experiments.figure4().render());
    println!("{}", experiments.table1_extended(10).render());
    println!("{}", experiments.results().render_timing());
    if print_claims(&experiments) {
        0
    } else {
        1
    }
}

fn cmd_cache(args: &[String]) {
    let (config, note) = config(args);
    let preset = args
        .iter()
        .position(|a| a == "--preset")
        .map(|pos| {
            args.get(pos + 1)
                .map(String::as_str)
                .unwrap_or_else(|| usage())
        })
        .unwrap_or("cortex-a9");
    let geometry = HierarchyGeometry::by_name(preset).unwrap_or_else(|err| {
        eprintln!("agave cache: {err}");
        std::process::exit(2);
    });
    let json = args.iter().any(|a| a == "--json");
    if args.iter().any(|a| a == "--fig5") {
        eprintln!("replaying 25 workloads through {preset} ({note})…");
        let fig5 = Fig5Cache::run_jobs(&config, geometry, jobs(args));
        if json {
            println!("{}", fig5.to_json());
        } else {
            println!("{}", fig5.render());
        }
        return;
    }
    // The label is the first bare argument that is not the value of a
    // value-taking flag (`--preset cortex-a9`, `--top 5`, `--jobs 2`, …).
    let flag_values: Vec<usize> = args
        .iter()
        .enumerate()
        .filter(|(_, a)| {
            [
                "--preset",
                "--top",
                "--jobs",
                "--json",
                "--telemetry",
                "--telemetry-format",
            ]
            .contains(&a.as_str())
        })
        .map(|(i, _)| i + 1)
        .collect();
    let label = args
        .iter()
        .enumerate()
        .find(|(i, a)| !a.starts_with("--") && !flag_values.contains(i))
        .map(|(_, a)| a.as_str())
        .unwrap_or_else(|| usage());
    let top = args
        .iter()
        .position(|a| a == "--top")
        .and_then(|pos| args.get(pos + 1))
        .and_then(|n| n.parse().ok())
        .unwrap_or(12);
    let workload = find(label);
    eprintln!("replaying {label} through {preset} ({note})…");
    let report = run_workload_with_cache(workload, &config, geometry);
    if json {
        println!("{}", report.to_json());
    } else {
        println!("{}", report.render(top));
    }
}

fn cmd_claims(args: &[String]) -> i32 {
    let (config, note) = config(args);
    eprintln!("running 25 workloads ({note})…");
    let experiments = Experiments::from_config_jobs(&config, jobs(args));
    if print_claims(&experiments) {
        0
    } else {
        1
    }
}

/// Prints the claim checklist; returns `true` when every claim passed.
fn print_claims(experiments: &Experiments) -> bool {
    let claims = experiments.check_claims();
    let passed = claims.iter().filter(|c| c.pass).count();
    for claim in &claims {
        println!(
            "[{}] {:<58} paper {:<30} measured {}",
            if claim.pass { "ok" } else { "!!" },
            claim.description,
            claim.paper,
            claim.measured
        );
    }
    println!("{passed}/{} claims in band", claims.len());
    passed == claims.len()
}

/// Parses `--chunk-records N` (default [`agave_replay::format::CHUNK_RECORDS`]).
fn chunk_records(args: &[String]) -> usize {
    flag_value(args, "--chunk-records")
        .map(|n| {
            n.parse()
                .ok()
                .filter(|&c| c >= 1)
                .unwrap_or_else(|| usage())
        })
        .unwrap_or(agave_replay::format::CHUNK_RECORDS)
}

fn cmd_record(args: &[String]) {
    let (config, note) = config(args);
    if args.iter().any(|a| a == "--all") {
        let dir = Path::new(flag_value(args, "--dir").unwrap_or("traces"));
        let workloads = all_workloads();
        eprintln!(
            "recording {} workloads ({note}) into {}/ …",
            workloads.len(),
            dir.display()
        );
        let rows = cli::or_fail(
            "record",
            dir,
            record::record_suite(&workloads, &config, dir, jobs(args), chunk_records(args)),
        );
        let mut failures = 0;
        for (workload, result) in rows {
            match result {
                Ok(stats) => println!(
                    "  {:<28} {:>12} records · {:>10} bytes · {:.2} B/record",
                    workload.label(),
                    stats.records,
                    stats.file_bytes,
                    stats.bytes_per_record()
                ),
                Err(err) => {
                    failures += 1;
                    eprintln!("  {:<28} FAILED: {err}", workload.label());
                }
            }
        }
        if failures > 0 {
            std::process::exit(1);
        }
        return;
    }
    let label = bare_arg(
        args,
        &[
            "-o",
            "--output",
            "--dir",
            "--jobs",
            "--chunk-records",
            "--telemetry",
            "--telemetry-format",
        ],
    )
    .unwrap_or_else(|| usage());
    let workload = find(label);
    let default_out = format!("{label}.agtrace");
    let out = flag_value(args, "-o")
        .or_else(|| flag_value(args, "--output"))
        .unwrap_or(&default_out);
    eprintln!("recording {label} ({note}) to {out}…");
    let stats = cli::or_fail(
        "record",
        Path::new(out),
        record::record_workload_chunked(workload, &config, Path::new(out), chunk_records(args)),
    );
    println!(
        "{out}: {} records ({} words) in {} chunks · {} bytes · {:.2} bytes/record",
        stats.records,
        stats.words,
        stats.chunks,
        stats.file_bytes,
        stats.bytes_per_record()
    );
}

fn cmd_replay(args: &[String]) {
    let path = bare_arg(
        args,
        &[
            "--cache",
            "--preset",
            "--top",
            "--jobs",
            "--telemetry",
            "--telemetry-format",
        ],
    )
    .map(Path::new)
    .unwrap_or_else(|| usage());
    let json = args.iter().any(|a| a == "--json");
    let jobs = jobs(args);
    if args.iter().any(|a| a == "--validate") {
        let outcome = cli::or_fail(
            "replay",
            path,
            agave_replay::TraceBuffer::open(path).and_then(|buf| buf.validate(jobs)),
        );
        println!(
            "{}: ok — {} ({} record chunks checksum-verified; footer promises {} records, {} words)",
            path.display(),
            outcome.label,
            outcome.record_chunks,
            outcome.records,
            outcome.words
        );
        return;
    }
    let preset = flag_value(args, "--cache").or_else(|| flag_value(args, "--preset"));
    if let Some(preset) = preset {
        let geometry = HierarchyGeometry::by_name(preset).unwrap_or_else(|err| {
            eprintln!("agave replay: {err}");
            std::process::exit(2);
        });
        let top = flag_value(args, "--top")
            .and_then(|n| n.parse().ok())
            .unwrap_or(12);
        eprintln!("replaying {} through {preset}…", path.display());
        let report = cli::or_fail(
            "replay",
            path,
            record::replay_trace_cache(path, geometry, jobs),
        );
        if json {
            println!("{}", report.to_json());
        } else {
            println!("{}", report.render(top));
        }
        return;
    }
    // Default (and `--summary`): rebuild the recorded run's summary.
    let summary = cli::or_fail("replay", path, record::replay_trace_summary(path, jobs));
    if json {
        println!("{}", summary.to_json());
    } else {
        println!(
            "{} (replayed from {}): {} instr + {} data references",
            summary.benchmark,
            path.display(),
            summary.total_instr,
            summary.total_data
        );
        print_breakdowns(&summary);
    }
}

/// Runs a design-space sweep off a recorded trace (`agave sweep`):
/// one decode, one hierarchy per grid cell, batches fanned across
/// `--jobs` workers. Output is identical for any job count.
fn cmd_sweep(args: &[String]) {
    let path = bare_arg(
        args,
        &["--grid", "--jobs", "--telemetry", "--telemetry-format"],
    )
    .map(Path::new)
    .unwrap_or_else(|| usage());
    let grid_arg = flag_value(args, "--grid").unwrap_or("size=16k,32k,64k:assoc=2,4,8:line=32,64");
    let grid = agave_analysis::GridSpec::parse(grid_arg).unwrap_or_else(|err| {
        eprintln!("agave sweep: {err}");
        std::process::exit(2);
    });
    let jobs = jobs(args);
    eprintln!(
        "sweeping {} through {} cells ({}; {} thread{})…",
        path.display(),
        grid.len(),
        grid.canonical(),
        engine::effective_jobs(jobs),
        if engine::effective_jobs(jobs) == 1 {
            ""
        } else {
            "s"
        }
    );
    let report = agave_analysis::sweep_path(path, &grid, jobs).unwrap_or_else(|err| {
        eprintln!("agave sweep: {}: {err}", path.display());
        std::process::exit(1);
    });
    if args.iter().any(|a| a == "--json") {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render());
    }
}

/// Renders a telemetry capture (`agave stats <telemetry.json>`).
fn cmd_stats(args: &[String]) {
    let path = bare_arg(args, &[])
        .map(Path::new)
        .unwrap_or_else(|| usage());
    let doc = cli::or_fail("stats", path, std::fs::read_to_string(path));
    let text = cli::or_fail("stats", path, agave_telemetry::stats::render_str(&doc));
    print!("{text}");
}

/// Runs the replay/analysis daemon (`agave serve`).
fn cmd_serve(args: &[String]) {
    let mut config = ServeConfig {
        addr: flag_value(args, "--addr")
            .unwrap_or("127.0.0.1:4950")
            .to_owned(),
        spool: flag_value(args, "--spool").map(PathBuf::from),
        ..ServeConfig::default()
    };
    if let Some(jobs) = flag_value(args, "--jobs") {
        config.jobs = jobs.parse().unwrap_or_else(|_| usage());
    }
    if let Some(cap) = flag_value(args, "--queue") {
        config.queue_cap = cap.parse().unwrap_or_else(|_| usage());
    }
    if let Some(decode_jobs) = flag_value(args, "--decode-jobs") {
        config.decode_jobs = decode_jobs.parse().unwrap_or_else(|_| usage());
    }
    if let Some(cap) = flag_value(args, "--flight-capacity") {
        config.flight_capacity = cap
            .parse()
            .ok()
            .filter(|&c| c >= 1)
            .unwrap_or_else(|| usage());
    }
    if let Some(slow) = flag_value(args, "--slow-ms") {
        config.slow_ms = slow.parse().unwrap_or_else(|_| usage());
    }
    let server = cli::or_fail_bare("serve", Server::bind(config.clone()));
    eprintln!(
        "agave-serve listening on {} ({} worker{}, queue {}; send `agave client shutdown` to stop)",
        server.local_addr(),
        engine::effective_jobs(config.jobs),
        if engine::effective_jobs(config.jobs) == 1 {
            ""
        } else {
            "s"
        },
        config.queue_cap,
    );
    let stats = server.run();
    eprintln!(
        "agave-serve: {} connections · {} uploads ({} bytes) · {} analyses · {} rejected · {} errors",
        stats.connections,
        stats.uploads,
        stats.bytes_ingested,
        stats.analyses,
        stats.rejects,
        stats.errors,
    );
}

/// Parses `STATS` request options shared by `agave client stats` and
/// `agave top`: format, flight-recorder window size, and filter.
fn stats_options(args: &[String]) -> (agave_serve::StatsFormat, u64, agave_serve::RecentFilter) {
    let format = match flag_value(args, "--format") {
        None | Some("json") => agave_serve::StatsFormat::Json,
        Some("prom") => agave_serve::StatsFormat::Prom,
        Some(other) => {
            eprintln!("unknown stats format {other:?}; use json or prom");
            std::process::exit(2);
        }
    };
    let recent = flag_value(args, "--recent")
        .map(|n| n.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(0);
    let filter = if args.iter().any(|a| a == "--errors") {
        agave_serve::RecentFilter::Errors
    } else if args.iter().any(|a| a == "--slow") {
        agave_serve::RecentFilter::Slow
    } else {
        agave_serve::RecentFilter::All
    };
    (format, recent, filter)
}

/// Talks to a running daemon (`agave client <subverb> …`).
fn cmd_client(args: &[String]) {
    let addr = flag_value(args, "--addr").unwrap_or("127.0.0.1:4950");
    let client = Client::new(addr);
    let value_flags = ["--addr", "--format", "--recent"];
    let positional: Vec<&str> = {
        let taken: Vec<usize> = args
            .iter()
            .enumerate()
            .filter(|(_, a)| value_flags.contains(&a.as_str()))
            .map(|(i, _)| i + 1)
            .collect();
        args.iter()
            .enumerate()
            .filter(|(i, a)| !a.starts_with('-') && !taken.contains(i))
            .map(|(_, a)| a.as_str())
            .collect()
    };
    match positional.as_slice() {
        ["ping"] => {
            cli::or_fail_bare("client", client.ping());
            println!("pong from {addr}");
        }
        ["shutdown"] => {
            cli::or_fail_bare("client", client.shutdown());
            println!("server at {addr} shutting down");
        }
        ["list"] => {
            let sessions = cli::or_fail_bare("client", client.list());
            print!("{}", agave_serve::render_sessions(&sessions));
        }
        ["upload", name, file] => {
            let path = Path::new(file);
            let ack = cli::or_fail("client", path, client.upload(name, path));
            println!(
                "uploaded {} as {:?}: {} bytes · {} records · {} words · {} chunks ({})",
                path.display(),
                ack.name,
                ack.file_bytes,
                ack.records,
                ack.words,
                ack.chunks,
                ack.label
            );
        }
        ["analyze", name, rest @ ..] => {
            let analysis = match rest {
                ["summary"] | [] => Analysis::Summary,
                ["cache", preset] => Analysis::Cache((*preset).to_owned()),
                ["sketch"] => Analysis::Sketch,
                _ => usage(),
            };
            let json = cli::or_fail_bare("client", client.analyze(name, &analysis));
            println!("{json}");
        }
        ["sweep", name, grid] => {
            let json = cli::or_fail_bare("client", client.sweep(name, grid));
            println!("{json}");
        }
        ["stats"] => {
            let (format, recent, filter) = stats_options(args);
            let body = cli::or_fail_bare("client", client.stats(format, recent, filter));
            print!("{body}");
            if !body.ends_with('\n') {
                println!();
            }
        }
        _ => usage(),
    }
}

/// A polling dashboard over a live daemon (`agave top <addr>`).
fn cmd_top(args: &[String]) {
    let addr = bare_arg(args, &["--interval", "--count", "--recent"]).unwrap_or("127.0.0.1:4950");
    let interval_ms: u64 = flag_value(args, "--interval")
        .map(|n| n.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(1000);
    let count: u64 = flag_value(args, "--count")
        .map(|n| n.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(0);
    let recent: u64 = flag_value(args, "--recent")
        .map(|n| n.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(8);
    let client = Client::new(addr);
    let mut prev: Option<(agave_serve::StatsSample, std::time::Instant)> = None;
    let mut polls = 0u64;
    loop {
        let body = cli::or_fail_bare(
            "top",
            client.stats(
                agave_serve::StatsFormat::Json,
                recent,
                agave_serve::RecentFilter::Notable,
            ),
        );
        let now = std::time::Instant::now();
        let sample = agave_serve::StatsSample::parse(&body).unwrap_or_else(|err| {
            eprintln!("agave top: bad STATS response: {err}");
            std::process::exit(1);
        });
        let (prev_sample, elapsed) = match &prev {
            Some((s, at)) => (Some(s), now.duration_since(*at).as_secs_f64()),
            None => (None, 0.0),
        };
        print!(
            "{}",
            agave_serve::render_dashboard(addr, prev_sample, &sample, elapsed)
        );
        println!("---");
        prev = Some((sample, now));
        polls += 1;
        if count != 0 && polls >= count {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

/// The benchmark registry front end (`agave bench <subverb> …`):
/// enumerate cases, run + append to the history, render trends, and
/// gate the latest run against its trailing baseline.
fn cmd_bench(args: &[String]) -> i32 {
    use agave_core::benchcases;
    use agave_registry::{aggregate, trend, BenchRecord, History, NoisePolicy, RunOpts, Tier};

    let sub = args.first().map(String::as_str).unwrap_or_else(|| usage());
    let rest = &args[1..];
    let history_path = benchcases::history_path(flag_value(rest, "--history"));
    let policy = {
        let mut policy = NoisePolicy::default();
        let parse = |flag: &str| -> Option<f64> {
            flag_value(rest, flag).map(|v| v.parse().unwrap_or_else(|_| usage()))
        };
        if let Some(window) = parse("--window") {
            policy.window = window as usize;
        }
        if let Some(mad_factor) = parse("--mad-factor") {
            policy.mad_factor = mad_factor;
        }
        if let Some(min_pct) = parse("--min-pct") {
            policy.min_pct = min_pct;
        }
        policy
    };
    let value_flags = [
        "--history",
        "--trials",
        "--warmup",
        "--last",
        "--window",
        "--mad-factor",
        "--min-pct",
    ];
    match sub {
        "list" => {
            println!("registered bench cases ({}):", benchcases::registry().len());
            for case in benchcases::registry() {
                println!("  {:<20} {}", case.name(), case.description());
                for tier in [Tier::Quick, Tier::Full] {
                    let params: Vec<String> = case
                        .params(tier)
                        .into_iter()
                        .map(|(k, v)| format!("{k}={v}"))
                        .collect();
                    println!("    {:<5} {}", tier.name(), params.join(" "));
                }
            }
            0
        }
        "run" => {
            let tier = if rest.iter().any(|a| a == "--quick") {
                Tier::Quick
            } else {
                Tier::Full
            };
            let mut opts = RunOpts::for_tier(tier);
            if let Some(trials) = flag_value(rest, "--trials") {
                opts.trials = trials
                    .parse()
                    .ok()
                    .filter(|&t| t >= 1)
                    .unwrap_or_else(|| usage());
            }
            if let Some(warmup) = flag_value(rest, "--warmup") {
                opts.warmup = warmup.parse().ok().unwrap_or_else(|| usage());
            }
            let cases = match bare_arg(rest, &value_flags) {
                Some(name) => vec![benchcases::find_case(name).unwrap_or_else(|| {
                    eprintln!("unknown bench case {name:?}; try `agave bench list`");
                    std::process::exit(2);
                })],
                None => benchcases::registry(),
            };
            for case in &cases {
                eprintln!(
                    "bench {} ({}, {} trials + {} warmup)…",
                    case.name(),
                    tier.name(),
                    opts.trials,
                    opts.warmup
                );
                let measurements = cli::or_fail_bare("bench", case.run(&opts));
                let metrics = aggregate(&measurements);
                let record = BenchRecord::stamped(case.name(), tier, case.params(tier), metrics);
                cli::or_fail(
                    "bench",
                    &history_path,
                    History::append(&history_path, &record),
                );
                for stat in &record.metrics {
                    println!(
                        "  {:<28} {:>12.3} {:<7} (MAD {:.3} over {} trials)",
                        stat.name, stat.median, stat.unit, stat.mad, stat.trials
                    );
                }
            }
            eprintln!(
                "appended {} record(s) to {}",
                cases.len(),
                history_path.display()
            );
            0
        }
        "history" => {
            let history = cli::or_fail("bench", &history_path, History::load(&history_path));
            let case = bare_arg(rest, &value_flags);
            let last = flag_value(rest, "--last")
                .map(|n| {
                    n.parse()
                        .ok()
                        .filter(|&n| n >= 2)
                        .unwrap_or_else(|| usage())
                })
                .unwrap_or(12);
            print!("{}", trend::render(&history, case, last, &policy));
            0
        }
        "check" => {
            let history = cli::or_fail("bench", &history_path, History::load(&history_path));
            let report = history.check(&policy);
            if rest.iter().any(|a| a == "--json") {
                print!("{}", report.to_json_lines());
            } else {
                print!("{}", report.render());
            }
            if report.failed() {
                for line in report.regressions() {
                    eprintln!("{}", cli::diagnostic("bench", None, &line.render()));
                }
                cli::EXIT_FAILURE
            } else {
                0
            }
        }
        _ => usage(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Parse --telemetry before dispatch so the enable flag is set before
    // any workload runs; write the capture after the verb returns.
    // (Hard-error paths inside the verbs exit directly and drop the
    // capture — telemetry for a failed run would be misleading anyway.)
    let telemetry = TelemetryOut::from_args(args.get(1..).unwrap_or(&[]));
    let code = match args.first().map(String::as_str) {
        Some("list") => {
            cmd_list();
            0
        }
        Some("run") => {
            cmd_run(&args[1..]);
            0
        }
        Some("suite") => cmd_suite(&args[1..]),
        Some("claims") => cmd_claims(&args[1..]),
        Some("cache") => {
            cmd_cache(&args[1..]);
            0
        }
        Some("record") => {
            cmd_record(&args[1..]);
            0
        }
        Some("replay") => {
            cmd_replay(&args[1..]);
            0
        }
        Some("sweep") => {
            cmd_sweep(&args[1..]);
            0
        }
        Some("stats") => {
            cmd_stats(&args[1..]);
            0
        }
        Some("serve") => {
            cmd_serve(&args[1..]);
            0
        }
        Some("client") => {
            cmd_client(&args[1..]);
            0
        }
        Some("top") => {
            cmd_top(&args[1..]);
            0
        }
        Some("bench") => cmd_bench(&args[1..]),
        _ => usage(),
    };
    telemetry.finish();
    if code != 0 {
        std::process::exit(code);
    }
}
