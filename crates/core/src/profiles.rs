//! Extension: static library-profile analysis.
//!
//! The paper closes with an observation the authors flag as future work:
//!
//! > *"Note that execution profiles of some Android libraries appear to be
//! > independent of who calls them. Static profiling could thus prove more
//! > useful for studying Android application behavior than it has for
//! > other types of applications in the past."*
//!
//! This module implements that analysis over the reproduction's suite
//! results: for every shared library, it computes a per-application
//! *profile* (the library's data-to-instruction reference ratio — a proxy
//! for "what kind of code this is": copy loop, dispatch-heavy glue,
//! compute kernel) and measures how stable that profile is across the
//! applications that use the library. Libraries with a low coefficient of
//! variation behave the same no matter who calls them — the candidates
//! the paper suggests for static profiling.

use agave_trace::RunSummary;

/// The per-library caller-independence report.
#[derive(Debug, Clone, PartialEq)]
pub struct LibraryProfile {
    /// Library (region) name.
    pub library: String,
    /// Applications that fetched ≥ `min_refs` instructions from it.
    pub callers: usize,
    /// Mean data/instruction ratio across callers.
    pub mean_ratio: f64,
    /// Coefficient of variation of the ratio across callers (σ/μ); lower
    /// means more caller-independent.
    pub cv: f64,
}

impl LibraryProfile {
    /// The paper's hypothesis threshold: a profile is considered
    /// caller-independent when its ratio varies by less than 35 % across
    /// callers.
    pub fn is_caller_independent(&self) -> bool {
        self.cv < 0.35
    }
}

/// Computes per-library profiles across `runs`, considering only
/// (library, app) pairs with at least `min_refs` instruction fetches and
/// libraries used by at least `min_callers` applications.
pub fn library_profiles(
    runs: &[RunSummary],
    min_refs: u64,
    min_callers: usize,
) -> Vec<LibraryProfile> {
    use std::collections::BTreeMap;
    // library -> per-app ratios
    let mut ratios: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
    for run in runs {
        for (region, &instr) in &run.instr_by_region {
            if instr < min_refs || !region.ends_with(".so") {
                continue;
            }
            let data = run.data_by_region.get(region).copied().unwrap_or(0);
            ratios
                .entry(region.as_str())
                .or_default()
                .push(data as f64 / instr as f64);
        }
    }
    let mut out: Vec<LibraryProfile> = ratios
        .into_iter()
        .filter(|(_, v)| v.len() >= min_callers)
        .map(|(library, v)| {
            let n = v.len() as f64;
            let mean = v.iter().sum::<f64>() / n;
            let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
            let cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
            LibraryProfile {
                library: library.to_owned(),
                callers: v.len(),
                mean_ratio: mean,
                cv,
            }
        })
        .collect();
    out.sort_by(|a, b| a.cv.partial_cmp(&b.cv).expect("finite CVs"));
    out
}

/// Renders the analysis as a text table.
pub fn render_library_profiles(profiles: &[LibraryProfile]) -> String {
    let mut out = String::from(
        "Library profile stability across callers (extension of the paper's closing observation)\n",
    );
    out.push_str(&format!(
        "{:<34} {:>8} {:>12} {:>8}  {}\n",
        "library", "callers", "data/instr", "CV", "caller-independent?"
    ));
    for p in profiles {
        out.push_str(&format!(
            "{:<34} {:>8} {:>12.3} {:>8.3}  {}\n",
            p.library,
            p.callers,
            p.mean_ratio,
            p.cv,
            if p.is_caller_independent() {
                "yes"
            } else {
                "no"
            }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_with(label: &str, lib: &str, instr: u64, data: u64) -> RunSummary {
        let mut s = RunSummary::empty(label);
        s.instr_by_region.insert(lib.to_owned(), instr);
        s.data_by_region.insert(lib.to_owned(), data);
        s.total_instr = instr;
        s.total_data = data;
        s
    }

    #[test]
    fn stable_library_is_caller_independent() {
        // Three apps, nearly identical data/instr ratio.
        let runs = vec![
            run_with("a", "libx.so", 1000, 500),
            run_with("b", "libx.so", 8000, 4100),
            run_with("c", "libx.so", 500, 245),
        ];
        let profiles = library_profiles(&runs, 100, 3);
        assert_eq!(profiles.len(), 1);
        assert!(profiles[0].is_caller_independent(), "{profiles:?}");
        assert_eq!(profiles[0].callers, 3);
    }

    #[test]
    fn erratic_library_is_not() {
        let runs = vec![
            run_with("a", "liby.so", 1000, 100),
            run_with("b", "liby.so", 1000, 2000),
            run_with("c", "liby.so", 1000, 50),
        ];
        let profiles = library_profiles(&runs, 100, 3);
        assert!(!profiles[0].is_caller_independent(), "{profiles:?}");
    }

    #[test]
    fn filters_apply() {
        let runs = vec![
            run_with("a", "libz.so", 10, 5), // below min_refs
            run_with("b", "libz.so", 1000, 500),
            run_with("c", "heap", 1000, 500), // not a library
        ];
        assert!(library_profiles(&runs, 100, 2).is_empty());
        assert_eq!(library_profiles(&runs, 100, 1).len(), 1);
    }

    #[test]
    fn render_contains_rows() {
        let runs = vec![
            run_with("a", "libx.so", 1000, 500),
            run_with("b", "libx.so", 1000, 520),
        ];
        let profiles = library_profiles(&runs, 100, 2);
        let text = render_library_profiles(&profiles);
        assert!(text.contains("libx.so"));
        assert!(text.contains("caller-independent"));
    }
}
