//! Regenerating the paper's figures, table, and quantitative claims.

use crate::suite::{run_suite, run_suite_jobs, SuiteConfig, SuiteResults};
use agave_trace::{json, FigureTable, TableOne};

/// Legend size of the paper's figures (top 9 + "other (N items)").
const FIGURE_LEGEND: usize = 9;
/// Rows in the paper's Table I.
const TABLE1_ROWS: usize = 6;

/// One checked claim: what the paper reports vs what this reproduction
/// measured.
#[derive(Debug, Clone, PartialEq)]
pub struct ClaimReport {
    /// Short identifier.
    pub id: String,
    /// What is being checked.
    pub description: String,
    /// The paper's value.
    pub paper: String,
    /// The measured value.
    pub measured: String,
    /// Whether the measured value is within the accepted band.
    pub pass: bool,
}

impl ClaimReport {
    fn new(id: &str, description: &str, paper: &str, measured: String, pass: bool) -> Self {
        ClaimReport {
            id: id.to_owned(),
            description: description.to_owned(),
            paper: paper.to_owned(),
            measured,
            pass,
        }
    }

    /// Serializes the claim as a JSON object.
    pub fn to_json(&self) -> String {
        json::Object::new()
            .field_str("id", &self.id)
            .field_str("description", &self.description)
            .field_str("paper", &self.paper)
            .field_str("measured", &self.measured)
            .field_bool("pass", self.pass)
            .finish()
    }
}

/// The paper-reproduction harness over a finished suite run.
///
/// # Example
///
/// ```no_run
/// use agave_core::{Experiments, SuiteConfig};
///
/// let ex = Experiments::from_config(&SuiteConfig::quick());
/// println!("{}", ex.figure1().render());
/// println!("{}", ex.table1().render());
/// assert!(ex.check_claims().iter().all(|c| c.pass));
/// ```
#[derive(Debug, Clone)]
pub struct Experiments {
    results: SuiteResults,
}

impl Experiments {
    /// Wraps existing suite results.
    pub fn new(results: SuiteResults) -> Self {
        Experiments { results }
    }

    /// Runs the whole suite at `config` and wraps the results.
    pub fn from_config(config: &SuiteConfig) -> Self {
        Experiments::new(run_suite(config))
    }

    /// Runs the whole suite on up to `jobs` worker threads (0 = one per
    /// CPU). Every figure, table, and claim is byte-identical to
    /// [`Experiments::from_config`] — parallelism only changes wall time.
    pub fn from_config_jobs(config: &SuiteConfig, jobs: usize) -> Self {
        Experiments::new(run_suite_jobs(config, jobs))
    }

    /// The underlying results.
    pub fn results(&self) -> &SuiteResults {
        &self.results
    }

    /// Figure 1: instruction references by VMA region (19 Agave + 6 SPEC).
    pub fn figure1(&self) -> FigureTable {
        FigureTable::figure1(&self.results.all(), FIGURE_LEGEND)
    }

    /// Figure 2: data references by VMA region.
    pub fn figure2(&self) -> FigureTable {
        FigureTable::figure2(&self.results.all(), FIGURE_LEGEND)
    }

    /// Figure 3: instruction references by process.
    pub fn figure3(&self) -> FigureTable {
        FigureTable::figure3(&self.results.all(), FIGURE_LEGEND)
    }

    /// Figure 4: data references by process.
    pub fn figure4(&self) -> FigureTable {
        FigureTable::figure4(&self.results.all(), FIGURE_LEGEND)
    }

    /// Table I: threads ranked by share of total memory references across
    /// the (Agave) suite.
    pub fn table1(&self) -> TableOne {
        TableOne::from_runs(&[self.results.agave_aggregate()], TABLE1_ROWS)
    }

    /// Table I with more rows (for inspecting the tail).
    pub fn table1_extended(&self, rows: usize) -> TableOne {
        TableOne::from_runs(&[self.results.agave_aggregate()], rows)
    }

    /// Extension: the paper's closing observation, quantified — per-library
    /// profile stability across callers (see [`crate::library_profiles`]).
    pub fn library_profiles(&self) -> Vec<crate::LibraryProfile> {
        crate::library_profiles(&self.results.agave, 5_000, 3)
    }

    /// Checks every quantitative claim of the paper against this run.
    pub fn check_claims(&self) -> Vec<ClaimReport> {
        let mut claims = Vec::new();
        let agg = self.results.agave_aggregate();

        // Suite-wide region diversity.
        let instr_regions = agg.instr_by_region.len();
        claims.push(ClaimReport::new(
            "suite-instr-regions",
            "distinct instruction regions across the Agave suite",
            "> 65 (9 named + 63 in 'other')",
            format!("{instr_regions}"),
            instr_regions > 65,
        ));
        let data_regions = agg.data_by_region.len();
        claims.push(ClaimReport::new(
            "suite-data-regions",
            "distinct data regions across the Agave suite",
            "≈ 170 (9 named + 169 in 'other')",
            format!("{data_regions}"),
            data_regions >= 130,
        ));

        // Per-application ranges.
        let code_counts: Vec<usize> = self
            .results
            .agave
            .iter()
            .map(|s| s.code_region_count())
            .collect();
        let (cmin, cmax) = min_max(&code_counts);
        claims.push(ClaimReport::new(
            "app-code-regions",
            "code regions per Agave application",
            "42–55",
            format!("{cmin}–{cmax}"),
            cmin >= 40 && cmax <= 60,
        ));
        let data_counts: Vec<usize> = self
            .results
            .agave
            .iter()
            .map(|s| s.data_region_count())
            .collect();
        let (dmin, dmax) = min_max(&data_counts);
        claims.push(ClaimReport::new(
            "app-data-regions",
            "data regions per Agave application",
            "32–104",
            format!("{dmin}–{dmax}"),
            dmin >= 32 && dmax <= 104,
        ));
        let proc_counts: Vec<usize> = self
            .results
            .agave
            .iter()
            .map(|s| s.spawned_processes)
            .collect();
        let (pmin, pmax) = min_max(&proc_counts);
        claims.push(ClaimReport::new(
            "app-processes",
            "processes per Agave application run",
            "20–34",
            format!("{pmin}–{pmax}"),
            pmin >= 20 && pmax <= 34,
        ));
        let thread_counts: Vec<usize> = self
            .results
            .agave
            .iter()
            .map(|s| s.spawned_threads)
            .collect();
        let (tmin, tmax) = min_max(&thread_counts);
        claims.push(ClaimReport::new(
            "app-threads",
            "threads per Agave application run",
            "32–147",
            format!("{tmin}–{tmax}"),
            tmin >= 32 && tmax <= 147,
        ));

        // gallery.mp4.view: mediaserver dominance.
        if let Some(gallery) = self.results.by_label("gallery.mp4.view") {
            let instr = gallery.instr_process_share("mediaserver");
            claims.push(ClaimReport::new(
                "gallery-mediaserver-instr",
                "gallery.mp4.view instruction refs from mediaserver",
                "81 %",
                format!("{:.1} %", instr * 100.0),
                instr > 0.55,
            ));
            let data = gallery.data_process_share("mediaserver");
            claims.push(ClaimReport::new(
                "gallery-mediaserver-data",
                "gallery.mp4.view data refs from mediaserver",
                "77 %",
                format!("{:.1} %", data * 100.0),
                data > 0.5,
            ));
        }

        // Table I shape.
        let table = self.table1();
        let sf = table.percent("SurfaceFlinger");
        claims.push(ClaimReport::new(
            "table1-surfaceflinger",
            "SurfaceFlinger thread share of suite references (rank 1)",
            "43.4 %",
            format!("{sf:.1} %"),
            !table.rows().is_empty()
                && table.rows()[0].thread == "SurfaceFlinger"
                && (30.0..=55.0).contains(&sf),
        ));
        let extended = self.table1_extended(24);
        for (family, paper_pct) in [
            ("Thread", 8.0),
            ("AsyncTask", 7.6),
            ("Compiler", 7.1),
            ("AudioTrackThread", 5.9),
            ("GC", 5.3),
        ] {
            let measured = extended.percent(family);
            claims.push(ClaimReport::new(
                &format!("table1-{}", family.to_lowercase()),
                &format!("{family} thread-family share of suite references"),
                &format!("{paper_pct:.1} %"),
                format!("{measured:.1} %"),
                (1.5..=15.0).contains(&measured),
            ));
        }

        // SPEC shape: app binary dominates; ata_sff/0 is the companion.
        for spec in &self.results.spec {
            let share = spec.instr_region_share("app binary");
            claims.push(ClaimReport::new(
                &format!("spec-binary-{}", spec.benchmark),
                &format!("{}: instruction refs from the app binary", spec.benchmark),
                "vast majority",
                format!("{:.1} %", share * 100.0),
                share > 0.5,
            ));
        }
        if let Some(bzip2) = self.results.by_label("401.bzip2") {
            let ata = bzip2.instr_by_process.contains_key("ata_sff/0");
            claims.push(ClaimReport::new(
                "spec-ata",
                "SPEC competes mainly with the ata_sff/0 storage thread",
                "present",
                if ata { "present" } else { "absent" }.to_owned(),
                ata,
            ));
        }
        if let Some(mcf) = self.results.by_label("429.mcf") {
            let anon = mcf.data_region_share("anonymous");
            claims.push(ClaimReport::new(
                "mcf-anonymous",
                "429.mcf: large allocations land in anonymous mmap (MMAP_THRESHOLD)",
                "prominent",
                format!("{:.1} %", anon * 100.0),
                anon > 0.15,
            ));
        }

        // Figure 1 headline: mspace and libdvm.so lead the suite.
        let fig1 = self.figure1();
        let legend = fig1.legend();
        let top2: Vec<&str> = legend.iter().take(2).map(String::as_str).collect();
        claims.push(ClaimReport::new(
            "fig1-mspace-libdvm",
            "mspace and libdvm.so are the leading instruction regions",
            "top of Figure 1",
            format!("top-2 = {top2:?}"),
            top2.contains(&"mspace") && top2.contains(&"libdvm.so"),
        ));

        claims
    }
}

fn min_max(values: &[usize]) -> (usize, usize) {
    let min = values.iter().copied().min().unwrap_or(0);
    let max = values.iter().copied().max().unwrap_or(0);
    (min, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use agave_trace::RunSummary;

    fn fake_results() -> SuiteResults {
        let mut agave = Vec::new();
        for label in ["a.main", "b.view"] {
            let mut s = RunSummary::empty(label);
            s.instr_by_region.insert("mspace".into(), 60);
            s.instr_by_region.insert("libdvm.so".into(), 40);
            s.refs_by_thread.insert("SurfaceFlinger".into(), 50);
            s.refs_by_thread.insert("GC".into(), 5);
            s.total_instr = 100;
            agave.push(s);
        }
        SuiteResults {
            agave,
            spec: vec![RunSummary::empty("401.bzip2")],
        }
    }

    #[test]
    fn figures_and_table_build_from_results() {
        let ex = Experiments::new(fake_results());
        let fig1 = ex.figure1();
        assert_eq!(fig1.legend()[0], "mspace");
        assert_eq!(fig1.benchmarks().count(), 3);
        let t = ex.table1();
        assert_eq!(t.rows()[0].thread, "SurfaceFlinger");
    }

    #[test]
    fn claims_report_paper_and_measured() {
        let ex = Experiments::new(fake_results());
        let claims = ex.check_claims();
        assert!(claims.len() > 10);
        let sf = claims
            .iter()
            .find(|c| c.id == "table1-surfaceflinger")
            .unwrap();
        assert_eq!(sf.paper, "43.4 %");
        // Fake data: SurfaceFlinger share is 100·100/110 ≈ 90% → fails band.
        assert!(!sf.pass);
        let fig1 = claims
            .iter()
            .find(|c| c.id == "fig1-mspace-libdvm")
            .unwrap();
        assert!(fig1.pass);
    }

    #[test]
    fn claim_renders_to_json() {
        let c = ClaimReport::new("x", "desc", "1", "2".into(), false);
        assert_eq!(
            c.to_json(),
            r#"{"id":"x","description":"desc","paper":"1","measured":"2","pass":false}"#
        );
    }
}
