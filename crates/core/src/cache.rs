//! Memory-hierarchy characterization over the classified reference
//! stream — the "Figure 5" the paper's atomic-CPU methodology motivates
//! but could not produce.
//!
//! The paper measures *what* the Android stack touches (figures 1–4);
//! this extension replays the same classified reference stream through a
//! configurable cache hierarchy ([`agave_cache`]) to ask *how well it
//! caches*. The headline: Android's instruction stream walks dozens of
//! interleaved code regions (libraries, the VM, services), so its L1I
//! locality is structurally worse than any of the single-binary SPEC
//! baselines.

use crate::engine;
use crate::suite::{all_workloads, SuiteConfig, Workload};
use agave_analysis::{AnalysisPass, CachePass};
use agave_cache::{CacheReport, HierarchyGeometry, Level, LevelStats};
use agave_trace::json;

/// Runs one workload with a cache analysis attached to its reference
/// stream (via [`engine::run_observed`]) and returns the full per-region
/// cache report.
///
/// The sink/finish pair is the analysis registry's shared
/// [`CachePass`] — the same one replay and the serve daemon use — so
/// the live report stays byte-identical to a replayed one by
/// construction. Each call boots a fresh simulated system, so reports
/// are deterministic and independent — including across threads, which
/// is what [`Fig5Cache::run_jobs`] exploits.
pub fn run_workload_with_cache(
    workload: Workload,
    config: &SuiteConfig,
    geometry: HierarchyGeometry,
) -> CacheReport {
    // The walk itself happens inside sink delivery during the run, so
    // the span covers run + walk; per-batch walk time is broken out by
    // the `cache.*` metrics the hierarchy records.
    let mut span = agave_telemetry::Span::enter_labeled("hierarchy walk", workload.label());
    let pass = CachePass::new(geometry);
    let outcome = engine::run_observed(workload, config, vec![pass.sink()]);
    let report = pass.report(workload.label(), &outcome.directory);
    span.set_refs(outcome.summary.total_refs());
    report
}

/// One benchmark's row in the cache-characterization figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Row {
    /// Benchmark label.
    pub benchmark: String,
    /// `true` for the 19 Agave workloads, `false` for SPEC baselines.
    pub is_android: bool,
    /// Whole-run stats indexed by [`Level::index`].
    pub totals: [LevelStats; 5],
    /// The region with the most L1 traffic.
    pub top_region: String,
    /// That region's L1I miss rate.
    pub top_region_l1i_miss_rate: f64,
    /// Number of regions that issued instruction fetches.
    pub code_regions: usize,
}

impl Fig5Row {
    fn from_report(report: &CacheReport, is_android: bool) -> Self {
        let top = report.regions.first();
        Fig5Row {
            benchmark: report.benchmark.clone(),
            is_android,
            totals: report.totals,
            top_region: top.map(|r| r.name.clone()).unwrap_or_default(),
            top_region_l1i_miss_rate: top.map(|r| r.level(Level::L1i).miss_rate()).unwrap_or(0.0),
            code_regions: report
                .regions
                .iter()
                .filter(|r| r.level(Level::L1i).accesses() > 0)
                .count(),
        }
    }

    /// Stats for one level.
    pub fn total(&self, level: Level) -> LevelStats {
        self.totals[level.index()]
    }

    fn to_json(&self) -> String {
        let mut obj = json::Object::new();
        obj.field_str("benchmark", &self.benchmark)
            .field_bool("android", self.is_android)
            .field_str("top_region", &self.top_region)
            .field_f64("top_region_l1i_miss_rate", self.top_region_l1i_miss_rate)
            .field_usize("code_regions", self.code_regions);
        for level in Level::ALL {
            let s = self.total(level);
            let mut l = json::Object::new();
            l.field_u64("hits", s.hits)
                .field_u64("misses", s.misses)
                .field_f64("miss_rate", s.miss_rate());
            obj.field_raw(level.label(), &l.finish());
        }
        obj.finish()
    }
}

/// The cache-characterization experiment: every workload replayed through
/// one cache geometry, one row per benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Cache {
    /// Geometry preset name.
    pub preset: String,
    /// One row per workload, in figure order (19 Agave, then 6 SPEC).
    pub rows: Vec<Fig5Row>,
}

impl Fig5Cache {
    /// Runs all 25 workloads through `geometry` at `config` sizing.
    pub fn run(config: &SuiteConfig, geometry: HierarchyGeometry) -> Self {
        Fig5Cache::run_workloads(&all_workloads(), config, geometry)
    }

    /// Like [`Fig5Cache::run`], but across up to `jobs` worker threads
    /// (0 = one per CPU). Each worker simulates private worlds with a
    /// private hierarchy, so rows are byte-identical to the serial run.
    pub fn run_jobs(config: &SuiteConfig, geometry: HierarchyGeometry, jobs: usize) -> Self {
        Fig5Cache::run_workloads_jobs(&all_workloads(), config, geometry, jobs)
    }

    /// Runs a chosen subset of workloads (rows keep the given order).
    pub fn run_workloads(
        workloads: &[Workload],
        config: &SuiteConfig,
        geometry: HierarchyGeometry,
    ) -> Self {
        Fig5Cache::run_workloads_jobs(workloads, config, geometry, 1)
    }

    /// [`Fig5Cache::run_workloads`] fanned out over the engine's parallel
    /// runner.
    pub fn run_workloads_jobs(
        workloads: &[Workload],
        config: &SuiteConfig,
        geometry: HierarchyGeometry,
        jobs: usize,
    ) -> Self {
        let rows = engine::parallel_map(workloads.len(), jobs, |i| {
            let w = workloads[i];
            let report = run_workload_with_cache(w, config, geometry);
            Fig5Row::from_report(&report, matches!(w, Workload::Agave(_)))
        });
        Fig5Cache {
            preset: geometry.name.to_owned(),
            rows,
        }
    }

    /// The Android rows merged into one aggregate for `level`.
    pub fn android_aggregate(&self, level: Level) -> LevelStats {
        let mut agg = LevelStats::default();
        for row in self.rows.iter().filter(|r| r.is_android) {
            agg.absorb(row.total(level));
        }
        agg
    }

    /// The SPEC rows, in figure order.
    pub fn spec_rows(&self) -> impl Iterator<Item = &Fig5Row> {
        self.rows.iter().filter(|r| !r.is_android)
    }

    /// Renders the per-benchmark miss-rate table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Cache characterization, preset {} — miss rates per benchmark\n",
            self.preset
        );
        out.push_str(&format!(
            "{:<22} {:>7} {:>7} {:>7} {:>7} {:>7} {:>6}  {}\n",
            "benchmark", "L1I%", "L1D%", "L2%", "ITLB%", "DTLB%", "#code", "top region (L1I%)"
        ));
        for row in &self.rows {
            out.push_str(&format!(
                "{:<22} {:>6.2}% {:>6.2}% {:>6.2}% {:>6.2}% {:>6.2}% {:>6}  {} ({:.2}%)\n",
                row.benchmark,
                row.total(Level::L1i).miss_rate() * 100.0,
                row.total(Level::L1d).miss_rate() * 100.0,
                row.total(Level::L2).miss_rate() * 100.0,
                row.total(Level::Itlb).miss_rate() * 100.0,
                row.total(Level::Dtlb).miss_rate() * 100.0,
                row.code_regions,
                row.top_region,
                row.top_region_l1i_miss_rate * 100.0,
            ));
        }
        let agg = self.android_aggregate(Level::L1i);
        out.push_str(&format!(
            "android suite aggregate L1I miss rate: {:.2}%\n",
            agg.miss_rate() * 100.0
        ));
        out
    }

    /// Serializes the experiment as a JSON object.
    pub fn to_json(&self) -> String {
        json::Object::new()
            .field_str("preset", &self.preset)
            .field_f64(
                "android_l1i_miss_rate",
                self.android_aggregate(Level::L1i).miss_rate(),
            )
            .field_raw("rows", &json::array(self.rows.iter().map(|r| r.to_json())))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agave_apps::AppId;
    use agave_spec::SpecProgram;

    #[test]
    fn workload_report_has_traffic_and_preset() {
        let report = run_workload_with_cache(
            Workload::Spec(SpecProgram::Specrand),
            &SuiteConfig::quick(),
            HierarchyGeometry::tiny(),
        );
        assert_eq!(report.benchmark, "999.specrand");
        assert_eq!(report.preset, "tiny");
        assert!(report.total(Level::L1i).accesses() > 10_000);
        assert!(report.total(Level::L1d).accesses() > 0);
        assert!(!report.regions.is_empty());
    }

    #[test]
    fn fig5_rows_follow_workload_order_and_render() {
        let workloads = [
            Workload::Agave(AppId::CountdownMain),
            Workload::Spec(SpecProgram::Specrand),
        ];
        let fig5 = Fig5Cache::run_workloads(&workloads, &SuiteConfig::quick(), {
            HierarchyGeometry::tiny()
        });
        assert_eq!(fig5.rows.len(), 2);
        assert!(fig5.rows[0].is_android);
        assert!(!fig5.rows[1].is_android);
        assert_eq!(fig5.android_aggregate(Level::L1i).accesses(), {
            fig5.rows[0].total(Level::L1i).accesses()
        });
        let text = fig5.render();
        assert!(text.contains("countdown.main"));
        assert!(text.contains("999.specrand"));
        assert!(text.contains("android suite aggregate"));
        let json = fig5.to_json();
        assert!(json.starts_with(r#"{"preset":"tiny""#));
        assert!(json.contains(r#""benchmark":"countdown.main""#));
    }

    #[test]
    fn fig5_parallel_rows_match_serial() {
        let workloads = [
            Workload::Agave(AppId::CountdownMain),
            Workload::Spec(SpecProgram::Specrand),
        ];
        let config = SuiteConfig::quick();
        let serial = Fig5Cache::run_workloads(&workloads, &config, HierarchyGeometry::tiny());
        let parallel =
            Fig5Cache::run_workloads_jobs(&workloads, &config, HierarchyGeometry::tiny(), 2);
        assert_eq!(serial, parallel);
        assert_eq!(serial.to_json(), parallel.to_json());
    }

    #[test]
    fn cache_reports_are_deterministic() {
        let run = || {
            run_workload_with_cache(
                Workload::Agave(AppId::CountdownMain),
                &SuiteConfig::quick(),
                HierarchyGeometry::tiny(),
            )
        };
        assert_eq!(run(), run());
    }
}
