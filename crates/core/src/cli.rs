//! Shared error reporting for the `agave` binary.
//!
//! Every operational failure (missing trace file, corrupt input,
//! unreachable server, …) exits through [`fail`]: a one-line
//! diagnostic on stderr — `agave <verb>: <context>: <cause>` — and
//! exit code [`EXIT_FAILURE`]. No panics, no backtraces, and the same
//! shape whether the path was missing, unreadable, or malformed.
//! Usage errors (bad flags) exit with [`EXIT_USAGE`] via the binary's
//! `usage()` instead.

use std::fmt;
use std::path::Path;

/// Exit code for operational failures (bad input, I/O, server errors).
pub const EXIT_FAILURE: i32 = 1;
/// Exit code for usage errors (unknown verbs, malformed flags).
pub const EXIT_USAGE: i32 = 2;

/// Formats the one-line diagnostic: `agave <verb>: [<path>: ]<cause>`.
pub fn diagnostic(verb: &str, path: Option<&Path>, cause: &dyn fmt::Display) -> String {
    match path {
        Some(p) => format!("agave {verb}: {}: {cause}", p.display()),
        None => format!("agave {verb}: {cause}"),
    }
}

/// Prints the diagnostic and exits with [`EXIT_FAILURE`].
pub fn fail(verb: &str, path: Option<&Path>, cause: &dyn fmt::Display) -> ! {
    eprintln!("{}", diagnostic(verb, path, cause));
    std::process::exit(EXIT_FAILURE);
}

/// Unwraps `result`, exiting through [`fail`] with the path attached
/// on error — the standard way a verb touches a user-supplied file.
pub fn or_fail<T, E: fmt::Display>(verb: &str, path: &Path, result: Result<T, E>) -> T {
    match result {
        Ok(v) => v,
        Err(err) => fail(verb, Some(path), &err),
    }
}

/// Unwraps `result`, exiting through [`fail`] without a path (for
/// failures not tied to a file, e.g. a refused connection).
pub fn or_fail_bare<T, E: fmt::Display>(verb: &str, result: Result<T, E>) -> T {
    match result {
        Ok(v) => v,
        Err(err) => fail(verb, None, &err),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostics_are_one_line_and_carry_the_path() {
        let d = diagnostic(
            "replay",
            Some(Path::new("missing.agtrace")),
            &"No such file or directory (os error 2)",
        );
        assert_eq!(
            d,
            "agave replay: missing.agtrace: No such file or directory (os error 2)"
        );
        assert!(!d.contains('\n'));
        assert_eq!(
            diagnostic("client", None, &"connection refused"),
            "agave client: connection refused"
        );
    }

    #[test]
    fn or_fail_passes_ok_values_through() {
        let v: u32 = or_fail("stats", Path::new("x"), Ok::<_, String>(7));
        assert_eq!(v, 7);
        let v: u32 = or_fail_bare("client", Ok::<_, String>(9));
        assert_eq!(v, 9);
    }
}
