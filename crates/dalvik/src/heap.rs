//! The managed object heap and its mark-sweep collector.

use crate::value::Value;
use agave_dex::ClassId;
use std::fmt;

/// A reference into the [`DalvikHeap`].
///
/// Slots are recycled after collection; holding a `HeapRef` across a GC is
/// only safe if it is reachable from the registered roots (which is exactly
/// the invariant the collector enforces — see the property tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HeapRef(u32);

impl HeapRef {
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }

    #[cfg(test)]
    pub(crate) fn for_tests(v: u32) -> Self {
        HeapRef(v)
    }
}

impl fmt::Display for HeapRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj@{}", self.0)
    }
}

#[derive(Debug, Clone)]
pub(crate) enum ObjKind {
    Instance { class: ClassId, fields: Vec<Value> },
    Array { elems: Vec<i64> },
}

#[derive(Debug, Clone)]
struct Slot {
    kind: ObjKind,
    bytes: u64,
    marked: bool,
}

/// Statistics from one collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcStats {
    /// Objects visited during mark.
    pub marked: usize,
    /// Objects freed during sweep.
    pub freed: usize,
    /// Bytes reclaimed.
    pub bytes_freed: u64,
}

/// The Dalvik managed heap: precise, non-moving mark-sweep.
///
/// Object payloads are authoritative here; the mapped `dalvik-heap` VMA in
/// the owning process exists for layout realism, and traffic is charged by
/// region name from the interpreter.
#[derive(Debug, Default)]
pub struct DalvikHeap {
    slots: Vec<Option<Slot>>,
    free: Vec<u32>,
    live_bytes: u64,
    allocated_since_gc: u64,
}

/// Object header overhead in bytes (class pointer + lock word).
const HEADER_BYTES: u64 = 8;

impl DalvikHeap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    fn insert(&mut self, kind: ObjKind, bytes: u64) -> HeapRef {
        self.live_bytes += bytes;
        self.allocated_since_gc += bytes;
        let slot = Slot {
            kind,
            bytes,
            marked: false,
        };
        if let Some(idx) = self.free.pop() {
            self.slots[idx as usize] = Some(slot);
            HeapRef(idx)
        } else {
            self.slots.push(Some(slot));
            HeapRef(u32::try_from(self.slots.len() - 1).expect("heap ref overflow"))
        }
    }

    /// Allocates an instance of `class` with `field_count` Null fields.
    pub fn alloc_instance(&mut self, class: ClassId, field_count: u16) -> HeapRef {
        let bytes = HEADER_BYTES + 8 * u64::from(field_count);
        self.insert(
            ObjKind::Instance {
                class,
                fields: vec![Value::Null; field_count as usize],
            },
            bytes,
        )
    }

    /// Allocates a zeroed integer array.
    pub fn alloc_array(&mut self, len: usize) -> HeapRef {
        let bytes = HEADER_BYTES + 8 * len as u64;
        self.insert(
            ObjKind::Array {
                elems: vec![0; len],
            },
            bytes,
        )
    }

    fn slot(&self, r: HeapRef) -> &Slot {
        self.slots[r.index()]
            .as_ref()
            .unwrap_or_else(|| panic!("dangling heap reference {r}"))
    }

    fn slot_mut(&mut self, r: HeapRef) -> &mut Slot {
        self.slots[r.index()]
            .as_mut()
            .unwrap_or_else(|| panic!("dangling heap reference {r}"))
    }

    /// Reads an instance field.
    ///
    /// # Panics
    ///
    /// Panics on dangling refs, arrays, or out-of-range fields.
    pub fn get_field(&self, obj: HeapRef, field: u16) -> Value {
        match &self.slot(obj).kind {
            ObjKind::Instance { fields, .. } => fields[field as usize],
            ObjKind::Array { .. } => panic!("field access on array {obj}"),
        }
    }

    /// Writes an instance field.
    ///
    /// # Panics
    ///
    /// Panics on dangling refs, arrays, or out-of-range fields.
    pub fn set_field(&mut self, obj: HeapRef, field: u16, value: Value) {
        match &mut self.slot_mut(obj).kind {
            ObjKind::Instance { fields, .. } => fields[field as usize] = value,
            ObjKind::Array { .. } => panic!("field access on array {obj}"),
        }
    }

    /// Reads an array element.
    ///
    /// # Panics
    ///
    /// Panics on dangling refs, instances, or out-of-bounds indices (the
    /// `ArrayIndexOutOfBoundsException` analogue).
    pub fn array_get(&self, arr: HeapRef, idx: usize) -> i64 {
        match &self.slot(arr).kind {
            ObjKind::Array { elems } => elems[idx],
            ObjKind::Instance { .. } => panic!("array access on instance {arr}"),
        }
    }

    /// Writes an array element.
    ///
    /// # Panics
    ///
    /// As [`DalvikHeap::array_get`].
    pub fn array_set(&mut self, arr: HeapRef, idx: usize, value: i64) {
        match &mut self.slot_mut(arr).kind {
            ObjKind::Array { elems } => elems[idx] = value,
            ObjKind::Instance { .. } => panic!("array access on instance {arr}"),
        }
    }

    /// Array length.
    ///
    /// # Panics
    ///
    /// Panics on dangling refs or instances.
    pub fn array_len(&self, arr: HeapRef) -> usize {
        match &self.slot(arr).kind {
            ObjKind::Array { elems } => elems.len(),
            ObjKind::Instance { .. } => panic!("array length of instance {arr}"),
        }
    }

    /// Whether `r` currently points at a live object.
    pub fn is_live(&self, r: HeapRef) -> bool {
        self.slots.get(r.index()).is_some_and(|slot| slot.is_some())
    }

    /// Class of an instance.
    ///
    /// # Panics
    ///
    /// Panics on dangling refs or arrays.
    pub fn class_of(&self, obj: HeapRef) -> ClassId {
        match &self.slot(obj).kind {
            ObjKind::Instance { class, .. } => *class,
            ObjKind::Array { .. } => panic!("class of array {obj}"),
        }
    }

    /// Live object count.
    pub fn live_objects(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Live bytes (headers + payloads).
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Bytes allocated since the last collection (the GC trigger input).
    pub fn allocated_since_gc(&self) -> u64 {
        self.allocated_since_gc
    }

    /// Runs mark-sweep from `roots`, returning statistics.
    ///
    /// Precise: only [`Value::Ref`]s in reachable fields are traced.
    pub fn collect(&mut self, roots: &[HeapRef]) -> GcStats {
        // Mark.
        let mut worklist: Vec<HeapRef> =
            roots.iter().copied().filter(|r| self.is_live(*r)).collect();
        let mut marked = 0usize;
        while let Some(r) = worklist.pop() {
            let slot = self.slot_mut(r);
            if slot.marked {
                continue;
            }
            slot.marked = true;
            marked += 1;
            if let ObjKind::Instance { fields, .. } = &slot.kind {
                for v in fields {
                    if let Value::Ref(child) = v {
                        worklist.push(*child);
                    }
                }
            }
        }
        // Sweep.
        let mut freed = 0usize;
        let mut bytes_freed = 0u64;
        for (idx, entry) in self.slots.iter_mut().enumerate() {
            match entry {
                Some(slot) if slot.marked => slot.marked = false,
                Some(slot) => {
                    bytes_freed += slot.bytes;
                    freed += 1;
                    *entry = None;
                    self.free.push(idx as u32);
                }
                None => {}
            }
        }
        self.live_bytes -= bytes_freed;
        self.allocated_since_gc = 0;
        GcStats {
            marked,
            freed,
            bytes_freed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_field_access() {
        let mut h = DalvikHeap::new();
        let obj = h.alloc_instance(ClassId(0), 3);
        assert_eq!(h.get_field(obj, 1), Value::Null);
        h.set_field(obj, 1, Value::Int(9));
        assert_eq!(h.get_field(obj, 1), Value::Int(9));
        assert_eq!(h.class_of(obj), ClassId(0));
    }

    #[test]
    fn arrays_work() {
        let mut h = DalvikHeap::new();
        let arr = h.alloc_array(5);
        assert_eq!(h.array_len(arr), 5);
        h.array_set(arr, 4, -7);
        assert_eq!(h.array_get(arr, 4), -7);
        assert_eq!(h.array_get(arr, 0), 0);
    }

    #[test]
    fn gc_frees_unreachable_keeps_reachable_graph() {
        let mut h = DalvikHeap::new();
        let root = h.alloc_instance(ClassId(0), 2);
        let kept = h.alloc_instance(ClassId(0), 1);
        let lost = h.alloc_array(100);
        h.set_field(root, 0, Value::Ref(kept));
        let stats = h.collect(&[root]);
        assert_eq!(stats.marked, 2);
        assert_eq!(stats.freed, 1);
        assert!(h.is_live(root));
        assert!(h.is_live(kept));
        assert!(!h.is_live(lost));
        assert_eq!(h.live_objects(), 2);
    }

    #[test]
    fn gc_handles_cycles() {
        let mut h = DalvikHeap::new();
        let a = h.alloc_instance(ClassId(0), 1);
        let b = h.alloc_instance(ClassId(0), 1);
        h.set_field(a, 0, Value::Ref(b));
        h.set_field(b, 0, Value::Ref(a));
        let stats = h.collect(&[a]);
        assert_eq!(stats.marked, 2);
        assert_eq!(stats.freed, 0);
        // An unreachable cycle is collected.
        let stats = h.collect(&[]);
        assert_eq!(stats.freed, 2);
        assert_eq!(h.live_objects(), 0);
        assert_eq!(h.live_bytes(), 0);
    }

    #[test]
    fn slots_are_recycled() {
        let mut h = DalvikHeap::new();
        let a = h.alloc_array(1);
        h.collect(&[]);
        let b = h.alloc_array(1);
        assert_eq!(a.index(), b.index());
    }

    #[test]
    fn allocation_counter_resets_on_gc() {
        let mut h = DalvikHeap::new();
        h.alloc_array(100);
        assert!(h.allocated_since_gc() > 800);
        h.collect(&[]);
        assert_eq!(h.allocated_since_gc(), 0);
    }

    #[test]
    #[should_panic(expected = "dangling")]
    fn dangling_access_panics() {
        let mut h = DalvikHeap::new();
        let a = h.alloc_array(1);
        h.collect(&[]);
        let _ = h.array_get(a, 0);
    }

    #[test]
    #[should_panic(expected = "array access on instance")]
    fn type_confusion_panics() {
        let mut h = DalvikHeap::new();
        let o = h.alloc_instance(ClassId(0), 1);
        let _ = h.array_get(o, 0);
    }
}
