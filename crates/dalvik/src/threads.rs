//! Dalvik's per-process service threads.
//!
//! Every Dalvik process on Gingerbread carries a standard retinue of VM
//! threads; two of them — `Compiler` (the trace JIT) and `GC` — rank in the
//! paper's Table I. `HeapWorker`, `Signal Catcher` and `JDWP` round out the
//! set and contribute to the paper's 32–147 threads-per-application counts.

use crate::vm::{VmRef, MSG_COMPILE, MSG_GC};
use agave_kernel::{Actor, Ctx, Kernel, Message, Pid, Tid};

/// The `GC` thread: performs mark-sweep when the mutator requests it.
pub struct GcThread {
    vm: VmRef,
}

impl GcThread {
    /// Creates a GC thread actor for `vm`.
    pub fn new(vm: VmRef) -> Self {
        GcThread { vm }
    }
}

impl Actor for GcThread {
    fn on_message(&mut self, cx: &mut Ctx<'_>, msg: Message) {
        if msg.what == MSG_GC {
            self.vm.borrow_mut().run_gc(cx);
        }
    }
}

/// The `Compiler` thread: drains the JIT queue.
pub struct CompilerThread {
    vm: VmRef,
}

impl CompilerThread {
    /// Creates a compiler thread actor for `vm`.
    pub fn new(vm: VmRef) -> Self {
        CompilerThread { vm }
    }
}

impl Actor for CompilerThread {
    fn on_message(&mut self, cx: &mut Ctx<'_>, msg: Message) {
        if msg.what == MSG_COMPILE {
            while self.vm.borrow_mut().compile_next(cx).is_some() {}
        }
    }
}

/// `HeapWorker` runs finalizers/reference enqueueing after collections; we
/// model a small fixed amount of work per GC-adjacent wakeup.
struct HeapWorker {
    vm: VmRef,
}

impl Actor for HeapWorker {
    fn on_message(&mut self, cx: &mut Ctx<'_>, _msg: Message) {
        let vm = self.vm.borrow();
        let libdvm = vm.regions.libdvm;
        drop(vm);
        cx.call_lib(libdvm, 200);
    }
}

/// The tids of one process's VM service threads.
#[derive(Debug, Clone, Copy)]
pub struct VmServiceThreads {
    /// The `GC` thread.
    pub gc: Tid,
    /// The `Compiler` (JIT) thread.
    pub compiler: Tid,
    /// The `HeapWorker` finalizer thread.
    pub heap_worker: Tid,
    /// `Signal Catcher` (inert in the model).
    pub signal_catcher: Tid,
    /// `JDWP` debugger thread (inert in the model).
    pub jdwp: Tid,
}

/// Spawns the standard Dalvik service threads for `pid` and wires the GC
/// and Compiler tids into the VM.
pub fn spawn_vm_service_threads(kernel: &mut Kernel, pid: Pid, vm: &VmRef) -> VmServiceThreads {
    let libdvm = kernel.well_known().libdvm;
    let gc = kernel.spawn_thread_in(pid, "GC", libdvm, Box::new(GcThread { vm: vm.clone() }));
    let compiler = kernel.spawn_thread_in(
        pid,
        "Compiler",
        libdvm,
        Box::new(CompilerThread { vm: vm.clone() }),
    );
    let heap_worker = kernel.spawn_thread_in(
        pid,
        "HeapWorker",
        libdvm,
        Box::new(HeapWorker { vm: vm.clone() }),
    );
    let signal_catcher =
        kernel.spawn_thread_in(pid, "Signal Catcher", libdvm, Box::new(InertVmThread));
    let jdwp = kernel.spawn_thread_in(pid, "JDWP", libdvm, Box::new(InertVmThread));
    vm.borrow_mut().set_service_threads(gc, compiler);
    VmServiceThreads {
        gc,
        compiler,
        heap_worker,
        signal_catcher,
        jdwp,
    }
}

struct InertVmThread;

impl Actor for InertVmThread {
    fn on_message(&mut self, _cx: &mut Ctx<'_>, _msg: Message) {}
}
