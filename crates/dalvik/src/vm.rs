//! The VM: loaded dex, heap, statics, JIT state, native hooks.

use crate::heap::{DalvikHeap, HeapRef};
use crate::interp;
use crate::value::Value;
use agave_dex::{DexFile, MethodId};
use agave_kernel::{Ctx, Message, NameId, Perms, RefKind, Tid};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// Invocations after which a method is queued for JIT compilation.
pub const JIT_THRESHOLD: u32 = 6;

/// Allocated bytes between collections before a GC is requested.
const GC_TRIGGER_BYTES: u64 = 32 * 1024;

/// Default bytecode fuel per [`Vm::invoke`] (ops before an infinite loop is
/// assumed).
const DEFAULT_FUEL: u64 = 200_000_000;

/// Message code asking the GC thread to collect.
pub(crate) const MSG_GC: u32 = 0x6763;
/// Message code asking the Compiler thread to drain the JIT queue.
pub(crate) const MSG_COMPILE: u32 = 0x6a69;

/// A native hook: the JNI analogue, called from bytecode via
/// [`agave_dex::Insn::Native`].
///
/// Hooks receive the VM (for heap access) and the running thread's charging
/// context; they must not retain either.
pub type NativeHook = Box<dyn FnMut(&mut Vm, &mut Ctx<'_>, &[Value]) -> Option<Value>>;

/// Shared handle to a process's VM, cloned into each of its thread actors.
pub type VmRef = Rc<RefCell<Vm>>;

/// Region ids the interpreter charges against.
#[derive(Debug, Clone, Copy)]
pub(crate) struct VmRegions {
    pub libdvm: NameId,
    pub jit: NameId,
    pub dalvik_heap: NameId,
    pub stack: NameId,
    /// The ARM kuser-helper page (`[vectors]`): Dalvik's atomics call
    /// through it constantly.
    pub vectors: NameId,
}

/// Execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VmStats {
    /// Bytecode ops executed by the interpreter.
    pub ops_interpreted: u64,
    /// Bytecode ops executed from JIT-compiled code.
    pub ops_compiled: u64,
    /// Methods compiled.
    pub methods_compiled: u64,
    /// Collections performed.
    pub gc_runs: u64,
    /// Native hook invocations.
    pub native_calls: u64,
}

/// A per-process Dalvik VM instance.
///
/// See the [crate docs](crate) for a full example.
pub struct Vm {
    pub(crate) dex: DexFile,
    /// The managed heap (public: framework natives manipulate objects).
    pub heap: DalvikHeap,
    pub(crate) statics: Vec<Vec<Value>>,
    pub(crate) invoke_counts: Vec<u32>,
    pub(crate) compiled: Vec<bool>,
    jit_pending: Vec<bool>,
    jit_queue: VecDeque<MethodId>,
    pub(crate) method_region: Vec<NameId>,
    pub(crate) hooks: Vec<Option<NativeHook>>,
    roots: Vec<HeapRef>,
    gc_tid: Option<Tid>,
    compiler_tid: Option<Tid>,
    gc_requested: bool,
    pub(crate) regions: VmRegions,
    pub(crate) stats: VmStats,
}

impl std::fmt::Debug for Vm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Vm")
            .field("methods", &self.dex.methods().len())
            .field("classes", &self.dex.classes().len())
            .field("live_objects", &self.heap.live_objects())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Vm {
    /// Loads `dex` into the current process: maps the dex image,
    /// `dalvik-heap`, `dalvik-LinearAlloc` and `dalvik-jit-code-cache`
    /// VMAs, and charges class-loading work to `libdvm.so`.
    pub fn new(cx: &mut Ctx<'_>, dex: DexFile, dex_region_name: &str) -> Self {
        let wk = cx.well_known();
        let dex_region = cx.intern_region(dex_region_name);
        // Map the runtime's regions into this process.
        let space = &mut cx.process().space;
        space.mmap(dex.image_size().max(1), dex_region, Perms::R);
        space.mmap(8 << 20, wk.dalvik_heap, Perms::RW);
        space.mmap(4 << 20, wk.dalvik_linear_alloc, Perms::RW);
        space.mmap(1 << 20, wk.dalvik_jit, Perms::RWX);

        // Class loading: verify + build runtime metadata in LinearAlloc.
        let classes = dex.classes().len() as u64;
        let methods = dex.methods().len() as u64;
        cx.call_lib(wk.libdvm, 500 * classes + 50 * methods);
        cx.charge(
            wk.dalvik_linear_alloc,
            RefKind::DataWrite,
            64 * classes + 8 * methods,
        );
        cx.charge(dex_region, RefKind::DataRead, 32 * classes + 8 * methods);

        let statics = dex
            .classes()
            .iter()
            .map(|c| vec![Value::Null; c.static_count as usize])
            .collect();
        let n = dex.methods().len();
        Vm {
            statics,
            invoke_counts: vec![0; n],
            compiled: vec![false; n],
            jit_pending: vec![false; n],
            jit_queue: VecDeque::new(),
            method_region: vec![dex_region; n],
            hooks: Vec::new(),
            roots: Vec::new(),
            gc_tid: None,
            compiler_tid: None,
            gc_requested: false,
            regions: VmRegions {
                libdvm: wk.libdvm,
                jit: wk.dalvik_jit,
                dalvik_heap: wk.dalvik_heap,
                stack: wk.stack,
                vectors: cx.intern_region("[vectors]"),
            },
            stats: VmStats::default(),
            dex,
            heap: DalvikHeap::new(),
        }
    }

    /// Wraps a VM for sharing between the threads of one process.
    pub fn into_shared(self) -> VmRef {
        Rc::new(RefCell::new(self))
    }

    /// The loaded dex file.
    pub fn dex(&self) -> &DexFile {
        &self.dex
    }

    /// Execution statistics so far.
    pub fn stats(&self) -> VmStats {
        self.stats
    }

    /// Overrides the region charged for a method's bytecode reads (e.g.
    /// framework methods living in `core.jar@classes.dex`).
    pub fn set_method_region(&mut self, method: MethodId, region: NameId) {
        self.method_region[method.0 as usize] = region;
    }

    /// Registers a native hook, returning its id for
    /// [`agave_dex::MethodBuilder::native`].
    pub fn register_hook(&mut self, hook: NativeHook) -> u32 {
        self.hooks.push(Some(hook));
        u32::try_from(self.hooks.len() - 1).expect("hook id overflow")
    }

    /// Adds a GC root (app/framework singletons that must survive
    /// collection).
    pub fn add_root(&mut self, r: HeapRef) {
        self.roots.push(r);
    }

    /// Removes a previously added root (no-op if absent).
    pub fn remove_root(&mut self, r: HeapRef) {
        self.roots.retain(|&x| x != r);
    }

    /// Current GC roots.
    pub fn roots(&self) -> &[HeapRef] {
        &self.roots
    }

    /// Wires the `GC` and `Compiler` service threads (see
    /// [`crate::spawn_vm_service_threads`]).
    pub fn set_service_threads(&mut self, gc: Tid, compiler: Tid) {
        self.gc_tid = Some(gc);
        self.compiler_tid = Some(compiler);
    }

    /// Reads a static slot.
    pub fn static_get(&self, class: agave_dex::ClassId, field: u16) -> Value {
        self.statics[class.0 as usize][field as usize]
    }

    /// Writes a static slot.
    pub fn static_set(&mut self, class: agave_dex::ClassId, field: u16, value: Value) {
        self.statics[class.0 as usize][field as usize] = value;
    }

    /// Invokes a method with `args`, returning its result.
    ///
    /// # Panics
    ///
    /// Panics on bytecode errors (type confusion, bad indices) or if the
    /// default fuel is exhausted.
    pub fn invoke(&mut self, cx: &mut Ctx<'_>, method: MethodId, args: &[Value]) -> Option<Value> {
        self.invoke_bounded(cx, method, args, DEFAULT_FUEL)
    }

    /// Invokes a method by class/method name.
    ///
    /// # Panics
    ///
    /// Panics if the method does not exist.
    pub fn invoke_named(
        &mut self,
        cx: &mut Ctx<'_>,
        class: &str,
        method: &str,
        args: &[Value],
    ) -> Option<Value> {
        let id = self
            .dex
            .find_method(class, method)
            .unwrap_or_else(|| panic!("no method {class}::{method}"));
        self.invoke(cx, id, args)
    }

    /// Invokes with an explicit fuel bound.
    ///
    /// # Panics
    ///
    /// Panics if fuel runs out before the outermost method returns.
    pub fn invoke_bounded(
        &mut self,
        cx: &mut Ctx<'_>,
        method: MethodId,
        args: &[Value],
        fuel: u64,
    ) -> Option<Value> {
        if self.note_invoke(method) {
            if let Some(compiler) = self.compiler_tid {
                cx.send(compiler, Message::new(MSG_COMPILE));
            }
        }
        let out = interp::execute(self, cx, method, args, fuel);
        self.post_run(cx);
        out
    }

    /// Records an invocation for JIT hotness; returns true if the method
    /// was queued for (re)compilation.
    ///
    /// The first queueing happens at [`JIT_THRESHOLD`]; after that, every
    /// 64th invocation re-queues the method, modeling the trace JIT's
    /// ongoing chaining/extension of hot traces.
    pub(crate) fn note_invoke(&mut self, method: MethodId) -> bool {
        let i = method.0 as usize;
        self.invoke_counts[i] = self.invoke_counts[i].saturating_add(1);
        let should_queue = if self.compiled[i] {
            self.invoke_counts[i].is_multiple_of(64)
        } else {
            self.invoke_counts[i] >= JIT_THRESHOLD
        };
        if should_queue && !self.jit_pending[i] {
            self.jit_pending[i] = true;
            self.jit_queue.push_back(method);
            return true;
        }
        false
    }

    pub(crate) fn compiler_tid(&self) -> Option<Tid> {
        self.compiler_tid
    }

    /// Requests an async GC if allocation has crossed the trigger —
    /// exposed so framework natives that allocate outside `invoke` (view
    /// temporaries, parcels) can keep collection behaviour faithful.
    pub fn request_gc_if_needed(&mut self, cx: &mut Ctx<'_>) {
        self.post_run(cx);
    }

    /// After a run: request async GC if allocation crossed the trigger.
    fn post_run(&mut self, cx: &mut Ctx<'_>) {
        if !self.gc_requested && self.heap.allocated_since_gc() > GC_TRIGGER_BYTES {
            self.gc_requested = true;
            if let Some(gc) = self.gc_tid {
                cx.send(gc, Message::new(MSG_GC));
            }
        }
    }

    /// Performs a mark-sweep collection in the calling thread's context
    /// (normally the `GC` service thread).
    pub fn run_gc(&mut self, cx: &mut Ctx<'_>) -> crate::heap::GcStats {
        let roots = self.roots.clone();
        let stats = self.heap.collect(&roots);
        self.gc_requested = false;
        self.stats.gc_runs += 1;
        // Gingerbread's collector is a stop-the-world full-heap
        // mark-sweep: it scans heap bitmaps and card tables for the whole
        // (multi-megabyte) heap regardless of live volume — pauses of tens
        // of milliseconds on a phone-class core.
        cx.call_lib(
            self.regions.libdvm,
            380_000 + 40 * stats.marked as u64 + 20 * stats.freed as u64 + stats.bytes_freed / 4,
        );
        cx.charge(
            self.regions.dalvik_heap,
            RefKind::DataRead,
            75_000 + 8 * stats.marked as u64 + stats.bytes_freed / 16,
        );
        cx.charge(
            self.regions.dalvik_heap,
            RefKind::DataWrite,
            20_000 + 4 * stats.freed as u64 + stats.bytes_freed / 32,
        );
        stats
    }

    /// Compiles the next queued method in the calling thread's context
    /// (normally the `Compiler` service thread). Returns the method, if any.
    pub fn compile_next(&mut self, cx: &mut Ctx<'_>) -> Option<MethodId> {
        let method = self.jit_queue.pop_front()?;
        let i = method.0 as usize;
        let insns = self.dex.method(method).code.len() as u64;
        let dex_region = self.method_region[i];
        // Trace selection, SSA construction and codegen: the trace JIT
        // spends thousands of instructions per bytecode compiled.
        cx.call_lib(self.regions.libdvm, 2_000 + 12_000 * insns);
        cx.charge(dex_region, RefKind::DataRead, 6 * insns);
        cx.charge(self.regions.jit, RefKind::DataWrite, 24 * insns);
        cx.charge(self.regions.dalvik_heap, RefKind::DataRead, 40 * insns);
        cx.charge(self.regions.dalvik_heap, RefKind::DataWrite, 16 * insns);
        self.compiled[i] = true;
        self.jit_pending[i] = false;
        self.stats.methods_compiled += 1;
        Some(method)
    }

    /// Whether a method has been JIT-compiled.
    pub fn is_compiled(&self, method: MethodId) -> bool {
        self.compiled[method.0 as usize]
    }

    /// Forces a method to compiled state without charging (test support).
    pub fn force_compiled(&mut self, method: MethodId) {
        self.compiled[method.0 as usize] = true;
    }
}
