//! The bytecode interpreter (and JIT-execution fast path).

use crate::value::Value;
use crate::vm::{Vm, MSG_COMPILE};
use agave_dex::{BinOp, ClassId, Cond, Insn, MethodId};
use agave_kernel::{Ctx, Message, RefKind};

/// Per-op instruction fetches in the interpreter (dispatch + handler).
const INTERP_FETCH: u64 = 8;
/// Per-op instruction fetches in compiled code.
const JIT_FETCH: u64 = 2;
/// Flush accumulated charges at least this often (ops), so simulated time
/// does not lag arbitrarily far behind work.
const FLUSH_EVERY: u64 = 65_536;

/// Charge accumulator: the interpreter batches its high-frequency charges
/// and flushes them in bulk, keeping the per-op overhead low.
#[derive(Debug, Default, Clone, Copy)]
struct Charges {
    libdvm_fetch: u64,
    jit_fetch: u64,
    dex_read: u64,
    stack_read: u64,
    stack_write: u64,
    heap_read: u64,
    heap_write: u64,
    since_flush: u64,
}

impl Charges {
    fn flush(&mut self, vm: &Vm, cx: &mut Ctx<'_>, dex_region: agave_kernel::NameId) {
        let r = vm.regions;
        cx.charge(r.libdvm, RefKind::InstrFetch, self.libdvm_fetch);
        cx.charge(r.jit, RefKind::InstrFetch, self.jit_fetch);
        cx.charge(dex_region, RefKind::DataRead, self.dex_read);
        cx.charge(r.stack, RefKind::DataRead, self.stack_read);
        cx.charge(r.stack, RefKind::DataWrite, self.stack_write);
        cx.charge(r.dalvik_heap, RefKind::DataRead, self.heap_read);
        cx.charge(r.dalvik_heap, RefKind::DataWrite, self.heap_write);
        // Atomic ops go through the ARM kuser-helper vector page.
        cx.charge(r.vectors, RefKind::InstrFetch, self.since_flush / 48);
        *self = Charges::default();
    }
}

struct Frame {
    method: MethodId,
    pc: usize,
    regs: Vec<Value>,
    /// Where the caller wants the return value.
    ret_to: Option<agave_dex::Reg>,
    compiled: bool,
}

/// Executes `method` with `args`, charging as it goes.
///
/// Returns the outermost return value. See `Vm::invoke` for the public
/// wrapper.
///
/// # Panics
///
/// Panics on malformed bytecode (bad registers/indices/types), division by
/// zero, or fuel exhaustion.
pub(crate) fn execute(
    vm: &mut Vm,
    cx: &mut Ctx<'_>,
    method: MethodId,
    args: &[Value],
    mut fuel: u64,
) -> Option<Value> {
    let mut charges = Charges::default();
    // The dex region can differ per method (framework vs app); track the
    // current one and flush when it changes.
    let mut cur_dex_region = vm.method_region[method.0 as usize];

    let mut stack: Vec<Frame> = Vec::with_capacity(8);
    stack.push(new_frame(vm, method, args, None));
    let mut result: Option<Value> = None;

    while !stack.is_empty() {
        let fi = stack.len() - 1;

        assert!(fuel > 0, "bytecode fuel exhausted — runaway loop?");
        fuel -= 1;

        let (insn, compiled) = {
            let f = &mut stack[fi];
            let insn = vm.dex.method(f.method).code[f.pc];
            f.pc += 1;
            (insn, f.compiled)
        };

        // Base per-op charges.
        charges.since_flush += 1;
        if compiled {
            charges.jit_fetch += JIT_FETCH;
            // Compiled traces still call back into libdvm runtime helpers
            // (allocation, monitors, exception checks).
            charges.libdvm_fetch += 1;
            vm.stats.ops_compiled += 1;
        } else {
            charges.libdvm_fetch += INTERP_FETCH;
            charges.dex_read += 1;
            vm.stats.ops_interpreted += 1;
        }

        match insn {
            Insn::Const { dst, value } => {
                stack[fi].regs[dst.0 as usize] = Value::Int(value);
                charges.stack_write += 1;
            }
            Insn::Move { dst, src } => {
                let f = &mut stack[fi];
                f.regs[dst.0 as usize] = f.regs[src.0 as usize];
                charges.stack_read += 1;
                charges.stack_write += 1;
            }
            Insn::BinOp { op, dst, a, b } => {
                let f = &mut stack[fi];
                let x = f.regs[a.0 as usize].as_int();
                let y = f.regs[b.0 as usize].as_int();
                f.regs[dst.0 as usize] = Value::Int(eval_binop(op, x, y));
                charges.stack_read += 2;
                charges.stack_write += 1;
                if !compiled {
                    charges.libdvm_fetch += 2;
                }
            }
            Insn::IfCmp { cond, a, b, target } => {
                let f = &mut stack[fi];
                let x = f.regs[a.0 as usize].as_int();
                let y = f.regs[b.0 as usize].as_int();
                charges.stack_read += 2;
                if eval_cond(cond, x, y) {
                    f.pc = target as usize;
                }
            }
            Insn::IfZ { cond, src, target } => {
                let f = &mut stack[fi];
                let x = f.regs[src.0 as usize].as_int();
                charges.stack_read += 1;
                if eval_cond(cond, x, 0) {
                    f.pc = target as usize;
                }
            }
            Insn::Goto { target } => {
                stack[fi].pc = target as usize;
            }
            Insn::NewInstance { dst, class } => {
                let class = ClassId(class);
                let nfields = vm.dex.class(class).field_count;
                let obj = vm.heap.alloc_instance(class, nfields);
                stack[fi].regs[dst.0 as usize] = Value::Ref(obj);
                charges.libdvm_fetch += 60;
                charges.heap_write += 2 + u64::from(nfields);
                charges.stack_write += 1;
            }
            Insn::NewArray { dst, len } => {
                let n = stack[fi].regs[len.0 as usize].as_int();
                assert!(n >= 0, "negative array size {n}");
                let arr = vm.heap.alloc_array(n as usize);
                stack[fi].regs[dst.0 as usize] = Value::Ref(arr);
                charges.libdvm_fetch += 60;
                charges.heap_write += 2 + (n as u64) / 4;
                charges.stack_write += 1;
            }
            Insn::ArrayLen { dst, arr } => {
                let a = stack[fi].regs[arr.0 as usize].as_ref();
                let len = vm.heap.array_len(a) as i64;
                stack[fi].regs[dst.0 as usize] = Value::Int(len);
                charges.heap_read += 1;
                charges.stack_write += 1;
            }
            Insn::AGet { dst, arr, idx } => {
                let (a, i) = {
                    let f = &stack[fi];
                    (
                        f.regs[arr.0 as usize].as_ref(),
                        f.regs[idx.0 as usize].as_int(),
                    )
                };
                let v = vm
                    .heap
                    .array_get(a, usize::try_from(i).expect("negative index"));
                stack[fi].regs[dst.0 as usize] = Value::Int(v);
                charges.heap_read += 1;
                charges.stack_read += 2;
                charges.stack_write += 1;
            }
            Insn::APut { src, arr, idx } => {
                let (a, i, v) = {
                    let f = &stack[fi];
                    (
                        f.regs[arr.0 as usize].as_ref(),
                        f.regs[idx.0 as usize].as_int(),
                        f.regs[src.0 as usize].as_int(),
                    )
                };
                vm.heap
                    .array_set(a, usize::try_from(i).expect("negative index"), v);
                charges.heap_write += 1;
                charges.stack_read += 3;
            }
            Insn::IGet { dst, obj, field } => {
                let o = stack[fi].regs[obj.0 as usize].as_ref();
                let v = vm.heap.get_field(o, field);
                stack[fi].regs[dst.0 as usize] = v;
                charges.heap_read += 1;
                charges.stack_read += 1;
                charges.stack_write += 1;
            }
            Insn::IPut { src, obj, field } => {
                let (o, v) = {
                    let f = &stack[fi];
                    (f.regs[obj.0 as usize].as_ref(), f.regs[src.0 as usize])
                };
                vm.heap.set_field(o, field, v);
                charges.heap_write += 1;
                charges.stack_read += 2;
            }
            Insn::SGet { dst, class, field } => {
                let v = vm.static_get(ClassId(class), field);
                stack[fi].regs[dst.0 as usize] = v;
                charges.heap_read += 1;
                charges.stack_write += 1;
            }
            Insn::SPut { src, class, field } => {
                let v = stack[fi].regs[src.0 as usize];
                vm.static_set(ClassId(class), field, v);
                charges.heap_write += 1;
                charges.stack_read += 1;
            }
            Insn::Invoke {
                method: target,
                args: arg_regs,
                dst,
                ..
            } => {
                let target = MethodId(target);
                let argv: Vec<Value> = {
                    let f = &stack[fi];
                    arg_regs.iter().map(|r| f.regs[r.0 as usize]).collect()
                };
                charges.libdvm_fetch += 30;
                charges.stack_read += argv.len() as u64;
                charges.stack_write += argv.len() as u64 + 2;
                if vm.note_invoke(target) {
                    if let Some(compiler) = vm.compiler_tid() {
                        charges.flush(vm, cx, cur_dex_region);
                        cx.send(compiler, Message::new(MSG_COMPILE));
                    }
                }
                let callee_region = vm.method_region[target.0 as usize];
                if callee_region != cur_dex_region {
                    charges.flush(vm, cx, cur_dex_region);
                    cur_dex_region = callee_region;
                }
                let callee = new_frame(vm, target, &argv, dst);
                stack.push(callee);
                continue;
            }
            Insn::Native {
                hook,
                args: arg_regs,
                dst,
            } => {
                let argv: Vec<Value> = {
                    let f = &stack[fi];
                    arg_regs.iter().map(|r| f.regs[r.0 as usize]).collect()
                };
                charges.libdvm_fetch += 20;
                charges.stack_read += argv.len() as u64;
                // Natives charge in their own scopes; keep time honest.
                charges.flush(vm, cx, cur_dex_region);
                vm.stats.native_calls += 1;
                let mut h = vm.hooks[hook as usize]
                    .take()
                    .unwrap_or_else(|| panic!("native hook {hook} is unregistered or re-entered"));
                let out = h(vm, cx, &argv);
                vm.hooks[hook as usize] = Some(h);
                if let Some(dst) = dst {
                    stack[fi].regs[dst.0 as usize] = out.unwrap_or(Value::Null);
                    charges.stack_write += 1;
                }
            }
            Insn::Return { src } => {
                let value = src.map(|r| stack[fi].regs[r.0 as usize]);
                charges.libdvm_fetch += 10;
                charges.stack_write += 1;
                let finished = stack.pop().expect("frame present");
                match stack.last_mut() {
                    Some(caller) => {
                        if let (Some(dst), Some(v)) = (finished.ret_to, value) {
                            caller.regs[dst.0 as usize] = v;
                        }
                        let caller_region = vm.method_region[caller.method.0 as usize];
                        if caller_region != cur_dex_region {
                            charges.flush(vm, cx, cur_dex_region);
                            cur_dex_region = caller_region;
                        }
                    }
                    None => result = value,
                }
                continue;
            }
        }

        if charges.since_flush >= FLUSH_EVERY {
            charges.flush(vm, cx, cur_dex_region);
        }
    }

    charges.flush(vm, cx, cur_dex_region);
    result
}

fn new_frame(vm: &Vm, method: MethodId, args: &[Value], ret_to: Option<agave_dex::Reg>) -> Frame {
    let mdef = vm.dex.method(method);
    assert_eq!(
        args.len(),
        mdef.num_args as usize,
        "arity mismatch calling {}",
        mdef.name
    );
    let mut regs = vec![Value::Null; mdef.num_regs as usize];
    // DEX convention: arguments arrive in the highest registers.
    let base = (mdef.num_regs - mdef.num_args) as usize;
    regs[base..base + args.len()].copy_from_slice(args);
    Frame {
        method,
        pc: 0,
        regs,
        ret_to,
        compiled: vm.compiled[method.0 as usize],
    }
}

fn eval_binop(op: BinOp, x: i64, y: i64) -> i64 {
    match op {
        BinOp::Add => x.wrapping_add(y),
        BinOp::Sub => x.wrapping_sub(y),
        BinOp::Mul => x.wrapping_mul(y),
        BinOp::Div => {
            assert!(y != 0, "division by zero");
            x.wrapping_div(y)
        }
        BinOp::Rem => {
            assert!(y != 0, "remainder by zero");
            x.wrapping_rem(y)
        }
        BinOp::And => x & y,
        BinOp::Or => x | y,
        BinOp::Xor => x ^ y,
        BinOp::Shl => x.wrapping_shl((y & 63) as u32),
        BinOp::Shr => x.wrapping_shr((y & 63) as u32),
    }
}

fn eval_cond(cond: Cond, x: i64, y: i64) -> bool {
    match cond {
        Cond::Eq => x == y,
        Cond::Ne => x != y,
        Cond::Lt => x < y,
        Cond::Ge => x >= y,
        Cond::Gt => x > y,
        Cond::Le => x <= y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_semantics() {
        assert_eq!(eval_binop(BinOp::Add, i64::MAX, 1), i64::MIN); // wrapping
        assert_eq!(eval_binop(BinOp::Sub, 3, 5), -2);
        assert_eq!(eval_binop(BinOp::Mul, -4, 3), -12);
        assert_eq!(eval_binop(BinOp::Div, 7, 2), 3);
        assert_eq!(eval_binop(BinOp::Rem, 7, 2), 1);
        assert_eq!(eval_binop(BinOp::And, 0b1100, 0b1010), 0b1000);
        assert_eq!(eval_binop(BinOp::Or, 0b1100, 0b1010), 0b1110);
        assert_eq!(eval_binop(BinOp::Xor, 0b1100, 0b1010), 0b0110);
        assert_eq!(eval_binop(BinOp::Shl, 1, 4), 16);
        assert_eq!(eval_binop(BinOp::Shr, -16, 2), -4);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_zero_panics() {
        let _ = eval_binop(BinOp::Div, 1, 0);
    }

    #[test]
    fn cond_semantics() {
        assert!(eval_cond(Cond::Eq, 1, 1));
        assert!(eval_cond(Cond::Ne, 1, 2));
        assert!(eval_cond(Cond::Lt, 1, 2));
        assert!(eval_cond(Cond::Ge, 2, 2));
        assert!(eval_cond(Cond::Gt, 3, 2));
        assert!(eval_cond(Cond::Le, 2, 2));
        assert!(!eval_cond(Cond::Lt, 2, 2));
    }
}
