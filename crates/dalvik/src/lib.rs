//! A behavioral Dalvik VM model for the Agave simulator.
//!
//! Gingerbread-era Android runs application "Java" code on Dalvik: a
//! register-based interpreter (`libdvm.so`) with a trace JIT emitting into
//! `dalvik-jit-code-cache`, a mark-sweep collector over `dalvik-heap`, and a
//! `dalvik-LinearAlloc` arena for class metadata. All four regions appear in
//! the paper's Figures 1 and 2, and the `Compiler` and `GC` threads appear
//! in its Table I.
//!
//! This crate executes real [`agave_dex`] bytecode — tests compute actual
//! results through the interpreter — while charging the references that
//! execution would generate:
//!
//! * interpreter dispatch → instruction fetches from `libdvm.so`;
//! * bytecode fetches → data reads from the mapped `.dex` region;
//! * frame registers → `stack` data traffic;
//! * object/array/static accesses → `dalvik-heap` traffic;
//! * hot methods get compiled on the `Compiler` thread and thereafter fetch
//!   from `dalvik-jit-code-cache` at lower per-op cost;
//! * allocation pressure triggers mark-sweep on the `GC` thread.
//!
//! # Example
//!
//! ```
//! use agave_dalvik::{Value, Vm};
//! use agave_dex::{BinOp, Cond, DexFile, MethodBuilder, Reg};
//! use agave_kernel::{Actor, Ctx, Kernel, Message};
//!
//! // sum(n) = 0 + 1 + ... + (n-1), as bytecode.
//! let mut dex = DexFile::new();
//! let class = dex.add_class("Ldemo/Sum;", 0, 0);
//! let mut m = MethodBuilder::new(4, 1);
//! let (n, i, sum, one) = (Reg(3), Reg(0), Reg(1), Reg(2));
//! m.konst(i, 0).konst(sum, 0).konst(one, 1);
//! let head = m.new_label();
//! m.bind(head);
//! m.binop(BinOp::Add, sum, sum, i);
//! m.binop(BinOp::Add, i, i, one);
//! m.if_cmp(Cond::Lt, i, n, head);
//! m.ret(Some(sum));
//! let sum_method = dex.add_method(class, "sum", m);
//!
//! struct App(Option<DexFile>, agave_dex::MethodId);
//! impl Actor for App {
//!     fn on_message(&mut self, cx: &mut Ctx<'_>, _msg: Message) {
//!         let mut vm = Vm::new(cx, self.0.take().unwrap(), "demo.apk@classes.dex");
//!         let out = vm.invoke(cx, self.1, &[Value::Int(10)]);
//!         assert_eq!(out, Some(Value::Int(45)));
//!     }
//! }
//!
//! let mut kernel = Kernel::new();
//! let pid = kernel.spawn_process("demo");
//! let tid = kernel.spawn_thread(pid, "main", Box::new(App(Some(dex), sum_method)));
//! kernel.send(tid, Message::new(0));
//! kernel.run_to_idle();
//! assert!(kernel.tracer().summarize("t").instr_by_region["libdvm.so"] > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod heap;
mod interp;
mod threads;
mod value;
mod vm;

pub use heap::{DalvikHeap, HeapRef};
pub use threads::{spawn_vm_service_threads, CompilerThread, GcThread, VmServiceThreads};
pub use value::Value;
pub use vm::{NativeHook, Vm, VmRef, JIT_THRESHOLD};
