//! Runtime values of the Dalvik model.

use crate::heap::HeapRef;
use std::fmt;

/// A Dalvik register/field/static value.
///
/// The tag is what lets the mark-sweep collector find references precisely
/// instead of scanning conservatively.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Value {
    /// The default value of uninitialized fields and statics.
    #[default]
    Null,
    /// A 64-bit integer (Dalvik's int/long collapsed into one width).
    Int(i64),
    /// A reference to a heap object or array.
    Ref(HeapRef),
}

impl Value {
    /// Extracts an integer.
    ///
    /// # Panics
    ///
    /// Panics if the value is not an `Int` — the bytecode equivalent of a
    /// verifier type error.
    pub fn as_int(self) -> i64 {
        match self {
            Value::Int(v) => v,
            other => panic!("expected Int, found {other:?}"),
        }
    }

    /// Extracts a reference.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a `Ref` (a `NullPointerException`
    /// analogue for `Null`).
    pub fn as_ref(self) -> HeapRef {
        match self {
            Value::Ref(r) => r,
            other => panic!("expected Ref, found {other:?}"),
        }
    }

    /// Whether this is a reference (GC root candidate).
    pub fn is_ref(self) -> bool {
        matches!(self, Value::Ref(_))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<HeapRef> for Value {
    fn from(r: HeapRef) -> Self {
        Value::Ref(r)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Ref(r) => write!(f, "{r}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(5).as_int(), 5);
        assert!(Value::Ref(HeapRef::for_tests(3)).is_ref());
        assert!(!Value::Int(1).is_ref());
        assert!(!Value::Null.is_ref());
        assert_eq!(Value::default(), Value::Null);
    }

    #[test]
    #[should_panic(expected = "expected Int")]
    fn int_of_null_panics() {
        let _ = Value::Null.as_int();
    }

    #[test]
    #[should_panic(expected = "expected Ref")]
    fn ref_of_int_panics() {
        let _ = Value::Int(1).as_ref();
    }
}
