//! End-to-end VM tests: real bytecode execution with charged references.

use agave_dalvik::{spawn_vm_service_threads, Value, Vm, VmRef, JIT_THRESHOLD};
use agave_dex::{BinOp, Cond, DexFile, MethodBuilder, MethodId, Reg};
use agave_kernel::{Actor, Ctx, Kernel, Message, Pid};
use agave_trace::RunSummary;

/// Builds a dex with `fib(n)` (recursive) and `sum(n)` (loop) and a
/// `churn(n)` allocator.
fn build_dex() -> (DexFile, MethodId, MethodId, MethodId) {
    let mut dex = DexFile::new();
    let class = dex.add_class("Lbench/Main;", 2, 1);

    // fib(n): if n < 2 return n; return fib(n-1) + fib(n-2)
    let fib_id_placeholder = dex.methods().len() as u32; // will be this id
    let mut fib = MethodBuilder::new(6, 1);
    let n = Reg(5);
    let two = Reg(0);
    let t1 = Reg(1);
    let t2 = Reg(2);
    let recurse = fib.new_label();
    fib.konst(two, 2);
    fib.if_cmp(Cond::Ge, n, two, recurse);
    fib.ret(Some(n));
    fib.bind(recurse);
    let one = Reg(3);
    fib.konst(one, 1);
    fib.binop(BinOp::Sub, t1, n, one);
    fib.invoke_static(MethodId(fib_id_placeholder), &[t1], Some(t1));
    fib.binop(BinOp::Sub, t2, n, two);
    fib.invoke_static(MethodId(fib_id_placeholder), &[t2], Some(t2));
    fib.binop(BinOp::Add, t1, t1, t2);
    fib.ret(Some(t1));
    let fib_id = dex.add_method(class, "fib", fib);
    assert_eq!(fib_id.0, fib_id_placeholder);

    // sum(n): loop accumulating i
    let mut sum = MethodBuilder::new(5, 1);
    let (n, i, acc, one) = (Reg(4), Reg(0), Reg(1), Reg(2));
    sum.konst(i, 0).konst(acc, 0).konst(one, 1);
    let head = sum.new_label();
    sum.bind(head);
    sum.binop(BinOp::Add, acc, acc, i);
    sum.binop(BinOp::Add, i, i, one);
    sum.if_cmp(Cond::Lt, i, n, head);
    sum.ret(Some(acc));
    let sum_id = dex.add_method(class, "sum", sum);

    // churn(n): allocate n arrays of 128 and drop them; returns n.
    let mut churn = MethodBuilder::new(6, 1);
    let (n, i, one, len, arr) = (Reg(5), Reg(0), Reg(1), Reg(2), Reg(3));
    churn.konst(i, 0).konst(one, 1).konst(len, 128);
    let head = churn.new_label();
    churn.bind(head);
    churn.new_array(arr, len);
    churn.aput(i, arr, one); // keep the array honest: write one slot
    churn.binop(BinOp::Add, i, i, one);
    churn.if_cmp(Cond::Lt, i, n, head);
    churn.ret(Some(i));
    let churn_id = dex.add_method(class, "churn", churn);

    (dex, fib_id, sum_id, churn_id)
}

/// Harness: runs `f` for `rounds` separate dispatches inside an app
/// main-thread actor with a fresh VM (with service threads), returning the
/// run summary. Multiple rounds let asynchronous service-thread work (JIT
/// compilation, GC) land between mutator steps, as on a live system.
fn run_vm_rounds(rounds: u32, f: impl FnMut(&mut Vm, &mut Ctx<'_>, u32) + 'static) -> RunSummary {
    struct Setup<F> {
        f: F,
        vm: VmRef,
        round: u32,
    }
    impl<F: FnMut(&mut Vm, &mut Ctx<'_>, u32) + 'static> Actor for Setup<F> {
        fn on_message(&mut self, cx: &mut Ctx<'_>, _msg: Message) {
            let vm = self.vm.clone();
            (self.f)(&mut vm.borrow_mut(), cx, self.round);
            self.round += 1;
        }
    }

    struct Bootstrap<F> {
        pid: Pid,
        f: Option<F>,
        dex: Option<DexFile>,
        rounds: u32,
    }
    impl<F: FnMut(&mut Vm, &mut Ctx<'_>, u32) + 'static> Actor for Bootstrap<F> {
        fn on_start(&mut self, cx: &mut Ctx<'_>) {
            let vm = Vm::new(cx, self.dex.take().expect("dex"), "bench.apk@classes.dex");
            let vm = vm.into_shared();
            let main = cx.spawn_thread_in(
                self.pid,
                "dalvik-main",
                cx.well_known().libdvm,
                Box::new(Setup {
                    f: self.f.take().expect("single bootstrap"),
                    vm: vm.clone(),
                    round: 0,
                }),
            );
            spawn_vm_service_threads(cx.kernel(), self.pid, &vm);
            for i in 0..self.rounds {
                // Spread rounds in time so service threads interleave.
                cx.send_after(u64::from(i) * 1_000_000, main, Message::new(1));
            }
        }
        fn on_message(&mut self, _cx: &mut Ctx<'_>, _msg: Message) {}
    }

    let (dex, _, _, _) = build_dex();
    let mut kernel = Kernel::new();
    let pid = kernel.spawn_process("benchmark");
    kernel.spawn_thread(
        pid,
        "bootstrap",
        Box::new(Bootstrap {
            pid,
            f: Some(f),
            dex: Some(dex),
            rounds,
        }),
    );
    kernel.run_to_idle();
    kernel.tracer().summarize("vm-test")
}

/// Single-round convenience wrapper.
fn run_vm_scenario(f: impl FnOnce(&mut Vm, &mut Ctx<'_>) + 'static) -> (RunSummary, Vm) {
    let mut f = Some(f);
    let summary = run_vm_rounds(1, move |vm, cx, _| {
        (f.take().expect("one round"))(vm, cx);
    });
    (summary, panic_free_vm())
}

fn panic_free_vm() -> Vm {
    // Construct a VM in a scratch kernel purely to satisfy the return type
    // in scenarios that don't need it.
    struct Grab(std::rc::Rc<std::cell::RefCell<Option<Vm>>>, Option<DexFile>);
    impl Actor for Grab {
        fn on_start(&mut self, cx: &mut Ctx<'_>) {
            let vm = Vm::new(cx, self.1.take().unwrap(), "scratch.dex");
            *self.0.borrow_mut() = Some(vm);
        }
        fn on_message(&mut self, _cx: &mut Ctx<'_>, _msg: Message) {}
    }
    let slot = std::rc::Rc::new(std::cell::RefCell::new(None));
    let mut kernel = Kernel::new();
    let pid = kernel.spawn_process("scratch");
    kernel.spawn_thread(
        pid,
        "main",
        Box::new(Grab(slot.clone(), Some(DexFile::new()))),
    );
    kernel.run_to_idle();
    let vm = slot.borrow_mut().take().expect("vm constructed");
    vm
}

#[test]
fn fib_computes_correctly() {
    let (summary, _) = run_vm_scenario(|vm, cx| {
        let out = vm.invoke_named(cx, "Lbench/Main;", "fib", &[Value::Int(15)]);
        assert_eq!(out, Some(Value::Int(610)));
    });
    assert!(summary.instr_by_region["libdvm.so"] > 1_000);
    assert!(summary.data_by_region["bench.apk@classes.dex"] > 100);
    assert!(summary.data_by_region["stack"] > 100);
}

#[test]
fn sum_loop_matches_closed_form() {
    let (_, _) = run_vm_scenario(|vm, cx| {
        for n in [1i64, 2, 10, 1000] {
            let out = vm.invoke_named(cx, "Lbench/Main;", "sum", &[Value::Int(n)]);
            assert_eq!(out, Some(Value::Int(n * (n - 1) / 2)));
        }
    });
}

#[test]
fn hot_methods_get_jit_compiled_and_shift_regions() {
    // Rounds of invocations: the Compiler thread's work lands between
    // rounds, so later rounds execute from the JIT cache.
    let summary = run_vm_rounds(JIT_THRESHOLD + 20, |vm, cx, _| {
        vm.invoke_named(cx, "Lbench/Main;", "sum", &[Value::Int(50)]);
    });
    // Compilation happened on the Compiler thread...
    assert!(summary.refs_by_thread.contains_key("Compiler"));
    // ...and compiled execution fetched from the JIT cache.
    assert!(
        summary.instr_by_region["dalvik-jit-code-cache"] > 0,
        "jit region missing: {:?}",
        summary.instr_by_region.keys().collect::<Vec<_>>()
    );
}

#[test]
fn jit_execution_is_cheaper_per_op() {
    // Interpreted-only run.
    let (interp_summary, _) = run_vm_scenario(|vm, cx| {
        let sum = vm.dex().find_method("Lbench/Main;", "sum").unwrap();
        vm.invoke(cx, sum, &[Value::Int(10_000)]);
    });
    // Pre-compiled run of the same work.
    let (jit_summary, _) = run_vm_scenario(|vm, cx| {
        let sum = vm.dex().find_method("Lbench/Main;", "sum").unwrap();
        vm.force_compiled(sum);
        vm.invoke(cx, sum, &[Value::Int(10_000)]);
    });
    let interp_total = interp_summary.total_instr;
    let jit_total = jit_summary.total_instr;
    assert!(
        jit_total * 2 < interp_total,
        "jit {jit_total} not ≪ interp {interp_total}"
    );
}

#[test]
fn allocation_pressure_triggers_gc_thread() {
    let (summary, _) = run_vm_scenario(|vm, cx| {
        let churn = vm.dex().find_method("Lbench/Main;", "churn").unwrap();
        // 128-slot arrays ≈ 1 KiB each; 2000 of them cross the 512 KiB
        // trigger several times over.
        let out = vm.invoke(cx, churn, &[Value::Int(2000)]);
        assert_eq!(out, Some(Value::Int(2000)));
    });
    assert!(
        summary.refs_by_thread.get("GC").copied().unwrap_or(0) > 0,
        "GC thread never ran: {:?}",
        summary.refs_by_thread
    );
}

#[test]
fn gc_preserves_rooted_objects() {
    run_vm_scenario(|vm, cx| {
        let class = agave_dex::ClassId(0);
        let keeper = vm.heap.alloc_instance(class, 2);
        let arr = vm.heap.alloc_array(64);
        vm.heap.set_field(keeper, 0, Value::Ref(arr));
        vm.add_root(keeper);
        let garbage = vm.heap.alloc_array(100_000); // force pressure
        let _ = garbage;
        let stats = vm.run_gc(cx);
        assert!(stats.freed >= 1);
        assert!(vm.heap.is_live(keeper));
        assert!(vm.heap.is_live(arr));
    });
}

#[test]
fn native_hooks_bridge_to_rust() {
    run_vm_scenario(|vm, cx| {
        // Hook 0: returns arg0 * 3, charging some libskia work.
        let hook = vm.register_hook(Box::new(|_vm, cx, args| {
            let skia = cx.well_known().libskia;
            cx.call_lib(skia, 500);
            Some(Value::Int(args[0].as_int() * 3))
        }));
        assert_eq!(hook, 0);

        // Build a one-off method that calls the hook.
        // (Added dynamically via a fresh dex is not supported; emulate by
        // invoking through an existing program's native support: build
        // inline.)
        let mut dex = DexFile::new();
        let class = dex.add_class("Lnat/T;", 0, 0);
        let mut m = MethodBuilder::new(2, 1);
        m.native(0, &[Reg(1)], Some(Reg(0)));
        m.ret(Some(Reg(0)));
        dex.add_method(class, "triple", m);
        // Swap in the new dex via a second VM in the same process.
        let mut vm2 = Vm::new(cx, dex, "nat.apk@classes.dex");
        let hook2 = vm2.register_hook(Box::new(|_vm, cx, args| {
            let skia = cx.well_known().libskia;
            cx.call_lib(skia, 500);
            Some(Value::Int(args[0].as_int() * 3))
        }));
        assert_eq!(hook2, 0);
        let out = vm2.invoke_named(cx, "Lnat/T;", "triple", &[Value::Int(14)]);
        assert_eq!(out, Some(Value::Int(42)));
        let _ = vm;
    });
}

#[test]
fn statics_persist_across_invocations() {
    run_vm_scenario(|vm, cx| {
        let mut dex = DexFile::new();
        let class = dex.add_class("Lst/C;", 0, 1);
        // bump(): s0 = s0 + 1; return s0
        let mut m = MethodBuilder::new(2, 0);
        m.sget(Reg(0), class, 0);
        // Statics start Null; seed on first call via IfZ-like check is
        // overkill — initialize explicitly with a setter method instead.
        m.konst(Reg(1), 1);
        m.binop(BinOp::Add, Reg(0), Reg(0), Reg(1));
        m.sput(Reg(0), class, 0);
        m.ret(Some(Reg(0)));
        dex.add_method(class, "bump", m);
        let mut vm2 = Vm::new(cx, dex, "st.apk@classes.dex");
        vm2.static_set(class, 0, Value::Int(0));
        assert_eq!(
            vm2.invoke_named(cx, "Lst/C;", "bump", &[]),
            Some(Value::Int(1))
        );
        assert_eq!(
            vm2.invoke_named(cx, "Lst/C;", "bump", &[]),
            Some(Value::Int(2))
        );
        let _ = vm;
    });
}

#[test]
fn fuel_exhaustion_panics() {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_vm_scenario(|vm, cx| {
            let mut dex = DexFile::new();
            let class = dex.add_class("Lloop/C;", 0, 0);
            let mut m = MethodBuilder::new(1, 0);
            let head = m.new_label();
            m.bind(head);
            m.goto(head);
            dex.add_method(class, "spin", m);
            let mut vm2 = Vm::new(cx, dex, "loop.apk@classes.dex");
            let id = vm2.dex().find_method("Lloop/C;", "spin").unwrap();
            vm2.invoke_bounded(cx, id, &[], 10_000);
            let _ = vm;
        });
    }));
    assert!(result.is_err(), "runaway loop should exhaust fuel");
}

#[test]
fn vm_maps_all_dalvik_regions() {
    let vm = panic_free_vm();
    let _ = vm; // construction exercised the mappings; region presence is
                // asserted in the scenario tests via summaries
}
