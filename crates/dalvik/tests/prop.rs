//! Randomized tests for the Dalvik model.
//!
//! The key one is *differential*: random straight-line bytecode programs
//! are executed both by the VM interpreter and by a direct Rust evaluator,
//! and must agree — the classic way to shake out interpreter bugs.
//! Inputs come from the in-tree [`XorShift64`] generator with fixed seeds.

use agave_dalvik::{Value, Vm};
use agave_dex::{BinOp, DexFile, MethodBuilder, MethodId, Reg};
use agave_kernel::{Actor, Ctx, Kernel, Message};
use agave_trace::XorShift64;

const CASES: u64 = 64;

/// A random arithmetic instruction over 4 working registers.
#[derive(Debug, Clone, Copy)]
enum Step {
    Const { dst: u8, value: i16 },
    Move { dst: u8, src: u8 },
    Bin { op: u8, dst: u8, a: u8, b: u8 },
}

fn random_step(rng: &mut XorShift64) -> Step {
    match rng.index(3) {
        0 => Step::Const {
            dst: rng.index(4) as u8,
            value: rng.next_u64() as i16,
        },
        1 => Step::Move {
            dst: rng.index(4) as u8,
            src: rng.index(4) as u8,
        },
        // Div/Rem excluded: divide-by-zero traps (tested separately).
        _ => Step::Bin {
            op: rng.index(8) as u8,
            dst: rng.index(4) as u8,
            a: rng.index(4) as u8,
            b: rng.index(4) as u8,
        },
    }
}

fn random_steps(rng: &mut XorShift64, lo: usize, hi: usize) -> Vec<Step> {
    let len = lo + rng.index(hi - lo);
    (0..len).map(|_| random_step(rng)).collect()
}

fn op_of(code: u8) -> BinOp {
    [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::Shr,
    ][code as usize % 8]
}

fn eval_direct(steps: &[Step]) -> i64 {
    let mut regs = [0i64; 4];
    for &s in steps {
        match s {
            Step::Const { dst, value } => regs[dst as usize] = i64::from(value),
            Step::Move { dst, src } => regs[dst as usize] = regs[src as usize],
            Step::Bin { op, dst, a, b } => {
                let (x, y) = (regs[a as usize], regs[b as usize]);
                regs[dst as usize] = match op_of(op) {
                    BinOp::Add => x.wrapping_add(y),
                    BinOp::Sub => x.wrapping_sub(y),
                    BinOp::Mul => x.wrapping_mul(y),
                    BinOp::And => x & y,
                    BinOp::Or => x | y,
                    BinOp::Xor => x ^ y,
                    BinOp::Shl => x.wrapping_shl((y & 63) as u32),
                    BinOp::Shr => x.wrapping_shr((y & 63) as u32),
                    BinOp::Div | BinOp::Rem => unreachable!("excluded"),
                };
            }
        }
    }
    regs[0]
}

fn assemble(steps: &[Step]) -> (DexFile, MethodId) {
    let mut dex = DexFile::new();
    let class = dex.add_class("Lprop/P;", 0, 0);
    let mut m = MethodBuilder::new(4, 0);
    // Registers start Null in the VM but 0 in the direct evaluator:
    // initialize explicitly.
    for r in 0..4 {
        m.konst(Reg(r), 0);
    }
    for &s in steps {
        match s {
            Step::Const { dst, value } => {
                m.konst(Reg(dst.into()), i64::from(value));
            }
            Step::Move { dst, src } => {
                m.mov(Reg(dst.into()), Reg(src.into()));
            }
            Step::Bin { op, dst, a, b } => {
                m.binop(op_of(op), Reg(dst.into()), Reg(a.into()), Reg(b.into()));
            }
        }
    }
    m.ret(Some(Reg(0)));
    let id = dex.add_method(class, "run", m);
    (dex, id)
}

/// Runs `f` once in a throwaway kernel and returns its result.
fn with_ctx<R: 'static>(f: impl FnOnce(&mut Ctx<'_>) -> R + 'static) -> R {
    struct Runner<F, R> {
        f: Option<F>,
        out: std::rc::Rc<std::cell::RefCell<Option<R>>>,
    }
    impl<F: FnOnce(&mut Ctx<'_>) -> R + 'static, R: 'static> Actor for Runner<F, R> {
        fn on_start(&mut self, cx: &mut Ctx<'_>) {
            let f = self.f.take().expect("one shot");
            *self.out.borrow_mut() = Some(f(cx));
        }
        fn on_message(&mut self, _cx: &mut Ctx<'_>, _msg: Message) {}
    }
    let out = std::rc::Rc::new(std::cell::RefCell::new(None));
    let mut kernel = Kernel::new();
    let pid = kernel.spawn_process("prop");
    kernel.spawn_thread(
        pid,
        "main",
        Box::new(Runner {
            f: Some(f),
            out: out.clone(),
        }),
    );
    kernel.run_to_idle();
    let result = out.borrow_mut().take().expect("actor ran");
    result
}

/// Differential execution: interpreter == direct evaluation.
#[test]
fn interpreter_matches_direct_evaluation() {
    let mut rng = XorShift64::new(0xd1ff);
    for _ in 0..CASES {
        let steps = random_steps(&mut rng, 0, 40);
        let expected = eval_direct(&steps);
        let got = with_ctx(move |cx| {
            let (dex, id) = assemble(&steps);
            let mut vm = Vm::new(cx, dex, "prop.dex");
            vm.invoke(cx, id, &[]).expect("returns").as_int()
        });
        assert_eq!(got, expected);
    }
}

/// JIT-compiled execution computes the same results as interpretation.
#[test]
fn compiled_matches_interpreted() {
    let mut rng = XorShift64::new(0x117);
    for _ in 0..CASES {
        let steps = random_steps(&mut rng, 1, 25);
        let (interp, compiled) = with_ctx(move |cx| {
            let (dex, id) = assemble(&steps);
            let mut vm = Vm::new(cx, dex, "prop.dex");
            let interp = vm.invoke(cx, id, &[]).expect("returns").as_int();
            vm.force_compiled(id);
            let compiled = vm.invoke(cx, id, &[]).expect("returns").as_int();
            (interp, compiled)
        });
        assert_eq!(interp, compiled);
    }
}

/// Random object graphs: after GC from a random root subset, exactly
/// the reachable objects survive.
#[test]
fn gc_keeps_exactly_the_reachable_set() {
    use agave_dalvik::DalvikHeap;
    use agave_dex::ClassId;

    let mut rng = XorShift64::new(0x6c);
    for _ in 0..CASES {
        let edges: Vec<(usize, usize)> = (0..rng.index(40))
            .map(|_| (rng.index(20), rng.index(20)))
            .collect();
        let root_mask = rng.below(1 << 20) as u32;

        let mut heap = DalvikHeap::new();
        let objs: Vec<_> = (0..20)
            .map(|_| heap.alloc_instance(ClassId(0), 4))
            .collect();
        // Mirror of the object fields: later edges overwrite earlier ones
        // landing in the same (object, field) slot, exactly as IPut does.
        let mut fields = [[None::<usize>; 4]; 20];
        for (slot, &(from, to)) in edges.iter().enumerate() {
            heap.set_field(objs[from], (slot % 4) as u16, Value::Ref(objs[to]));
            fields[from][slot % 4] = Some(to);
        }
        let roots: Vec<_> = objs
            .iter()
            .enumerate()
            .filter(|(i, _)| root_mask & (1 << i) != 0)
            .map(|(_, &o)| o)
            .collect();

        // Reference reachability over the *final* field state.
        let mut reachable = [false; 20];
        let mut work: Vec<usize> = (0..20).filter(|i| root_mask & (1 << i) != 0).collect();
        while let Some(i) = work.pop() {
            if reachable[i] {
                continue;
            }
            reachable[i] = true;
            for to in fields[i].iter().flatten() {
                if !reachable[*to] {
                    work.push(*to);
                }
            }
        }

        heap.collect(&roots);
        for (i, &obj) in objs.iter().enumerate() {
            assert_eq!(
                heap.is_live(obj),
                reachable[i],
                "object {i} live-state mismatch"
            );
        }
    }
}
