//! Bounded-memory streaming aggregation: heavy-hitter regions and
//! approximate inter-reference delta quantiles.
//!
//! A replayed trace can be arbitrarily larger than the server's RAM; the
//! sketches here summarize it in one streaming pass with memory that
//! depends only on their configured capacity, never on the stream:
//!
//! * [`SpaceSaving`] — the Metwally et al. *space-saving* algorithm over
//!   region ids, weighted by words. With capacity `k` and total stream
//!   weight `W`, every estimate `est` satisfies
//!   `est - err <= true <= est`, the per-entry error bound `err` is
//!   tracked exactly, and any key whose true weight exceeds `W / k` is
//!   guaranteed to be present. Memory: `k` entries, period.
//! * [`Log2Quantiles`] — a 65-bucket power-of-two histogram of the
//!   absolute address deltas between consecutive references (the
//!   stream's jumpiness). A reported quantile is the upper edge of the
//!   bucket holding that rank, so it is an upper bound on the true
//!   sample and within 2× of it (one log2 bucket). Memory: 65 counters.
//!
//! [`SketchSink`] is a [`ReferenceSink`], so it rides the same batched
//! `SINK_BATCH` delivery path as every other analysis and can be
//! attached to a live run or a [`agave_replay::TraceReader`] replay
//! unchanged. The error bounds above are asserted by the unit tests
//! below and by the `serve_load` bench against exact counts.

use agave_telemetry::metrics::Histogram;
use agave_trace::json;
use agave_trace::{NameDirectory, Reference, ReferenceSink};
use std::collections::HashMap;

/// One tracked key in a [`SpaceSaving`] sketch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeavyEntry {
    /// The tracked key (a region id's raw index).
    pub key: u32,
    /// Estimated total weight (an upper bound on the true weight).
    pub count: u64,
    /// Maximum overestimation: `count - err <= true weight <= count`.
    pub err: u64,
}

/// The space-saving heavy-hitter sketch over `u32` keys.
#[derive(Debug, Clone)]
pub struct SpaceSaving {
    capacity: usize,
    entries: Vec<HeavyEntry>,
    index: HashMap<u32, usize>,
    total: u64,
}

impl SpaceSaving {
    /// A sketch tracking at most `capacity` keys (`capacity >= 1`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "space-saving needs at least one counter");
        SpaceSaving {
            capacity,
            entries: Vec::with_capacity(capacity),
            index: HashMap::with_capacity(capacity),
            total: 0,
        }
    }

    /// Offers `weight` observations of `key`.
    pub fn offer(&mut self, key: u32, weight: u64) {
        self.total += weight;
        if let Some(&i) = self.index.get(&key) {
            self.entries[i].count += weight;
            return;
        }
        if self.entries.len() < self.capacity {
            self.index.insert(key, self.entries.len());
            self.entries.push(HeavyEntry {
                key,
                count: weight,
                err: 0,
            });
            return;
        }
        // Evict the minimum-count entry (first one on ties — the scan is
        // deterministic for a given stream) and inherit its count as the
        // newcomer's error bound.
        let mut min = 0;
        for (i, e) in self.entries.iter().enumerate().skip(1) {
            if e.count < self.entries[min].count {
                min = i;
            }
        }
        let evicted = self.entries[min];
        self.index.remove(&evicted.key);
        self.index.insert(key, min);
        self.entries[min] = HeavyEntry {
            key,
            count: evicted.count + weight,
            err: evicted.count,
        };
    }

    /// Total weight offered so far.
    pub fn total_weight(&self) -> u64 {
        self.total
    }

    /// The configured capacity `k`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The worst-case overestimation any entry can carry: `W / k`.
    pub fn error_bound(&self) -> u64 {
        self.total / self.capacity as u64
    }

    /// Tracked entries, sorted by estimated count descending (key
    /// ascending on ties, so output is stable).
    pub fn ranked(&self) -> Vec<HeavyEntry> {
        let mut out = self.entries.clone();
        out.sort_by(|a, b| b.count.cmp(&a.count).then(a.key.cmp(&b.key)));
        out
    }
}

/// A 65-bucket power-of-two histogram with rank queries.
///
/// Bucket boundaries are shared with the telemetry registry's
/// [`Histogram`] (bucket 0 holds zeros; bucket `i >= 1` holds
/// `[2^(i-1), 2^i - 1]`), so sketch output and telemetry output bucket
/// values identically.
#[derive(Debug, Clone)]
pub struct Log2Quantiles {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
}

impl Default for Log2Quantiles {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Quantiles {
    /// An empty sketch.
    pub fn new() -> Self {
        Log2Quantiles {
            buckets: [0; 65],
            count: 0,
            sum: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[Histogram::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean sample value (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper edge of the bucket
    /// containing that rank — an upper bound on the true order
    /// statistic, within one power of two of it.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        let mut last = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            last = i;
            if seen >= rank {
                return Histogram::bucket_hi(i);
            }
        }
        Histogram::bucket_hi(last)
    }
}

/// A [`ReferenceSink`] feeding both sketches from the classified stream.
pub struct SketchSink {
    regions: SpaceSaving,
    deltas: Log2Quantiles,
    prev_addr: Option<u64>,
    records: u64,
    words: u64,
}

impl SketchSink {
    /// Heavy-hitter capacity used by the server's `sketch` analysis.
    pub const DEFAULT_CAPACITY: usize = 32;

    /// A sink tracking at most `capacity` heavy-hitter regions.
    pub fn new(capacity: usize) -> Self {
        SketchSink {
            regions: SpaceSaving::new(capacity),
            deltas: Log2Quantiles::new(),
            prev_addr: None,
            records: 0,
            words: 0,
        }
    }

    /// Distills the sketches into a serializable report, resolving
    /// region ids through `directory`.
    pub fn report(&self, label: &str, directory: &NameDirectory) -> SketchReport {
        let heavy = self
            .regions
            .ranked()
            .into_iter()
            .map(|e| HeavyRegion {
                region: directory
                    .region(agave_trace::NameId::from_raw(e.key))
                    .to_owned(),
                words: e.count,
                err: e.err,
            })
            .collect();
        SketchReport {
            label: label.to_owned(),
            records: self.records,
            words: self.words,
            capacity: self.regions.capacity() as u64,
            error_bound: self.regions.error_bound(),
            heavy,
            delta_count: self.deltas.count(),
            delta_mean: self.deltas.mean(),
            delta_p50: self.deltas.quantile(0.50),
            delta_p90: self.deltas.quantile(0.90),
            delta_p99: self.deltas.quantile(0.99),
            delta_max: self.deltas.quantile(1.0),
        }
    }

    /// Read access for tests: the underlying heavy-hitter sketch.
    pub fn regions(&self) -> &SpaceSaving {
        &self.regions
    }
}

impl ReferenceSink for SketchSink {
    fn on_reference(&mut self, r: &Reference) {
        self.records += 1;
        self.words += r.words;
        self.regions.offer(r.region.index() as u32, r.words);
        if let Some(prev) = self.prev_addr {
            self.deltas.record(r.addr.abs_diff(prev));
        }
        self.prev_addr = Some(r.addr);
    }
}

/// One heavy-hitter row in a [`SketchReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeavyRegion {
    /// Resolved region name.
    pub region: String,
    /// Estimated words charged to the region (upper bound).
    pub words: u64,
    /// Maximum overestimation for this row.
    pub err: u64,
}

/// The `sketch` analysis output: top regions by estimated words plus
/// inter-reference address-delta quantiles, all from O(capacity) memory.
#[derive(Debug, Clone, PartialEq)]
pub struct SketchReport {
    /// The recorded workload's label.
    pub label: String,
    /// Reference blocks observed.
    pub records: u64,
    /// Words observed (exact — totals are plain counters).
    pub words: u64,
    /// Heavy-hitter capacity `k`.
    pub capacity: u64,
    /// Documented worst-case overestimation: `words / k`.
    pub error_bound: u64,
    /// Regions ranked by estimated words, descending.
    pub heavy: Vec<HeavyRegion>,
    /// Number of recorded address deltas (records − 1).
    pub delta_count: u64,
    /// Mean absolute address delta.
    pub delta_mean: f64,
    /// Median absolute address delta (bucket upper edge).
    pub delta_p50: u64,
    /// 90th-percentile absolute address delta (bucket upper edge).
    pub delta_p90: u64,
    /// 99th-percentile absolute address delta (bucket upper edge).
    pub delta_p99: u64,
    /// Largest observed delta's bucket upper edge.
    pub delta_max: u64,
}

impl SketchReport {
    /// Deterministic JSON rendering (the server's wire format for the
    /// `sketch` analysis).
    pub fn to_json(&self) -> String {
        let heavy = json::array(self.heavy.iter().map(|h| {
            let mut o = json::Object::new();
            o.field_str("region", &h.region)
                .field_u64("words", h.words)
                .field_u64("err", h.err);
            o.finish()
        }));
        let mut o = json::Object::new();
        o.field_str("label", &self.label)
            .field_u64("records", self.records)
            .field_u64("words", self.words)
            .field_u64("capacity", self.capacity)
            .field_u64("error_bound", self.error_bound)
            .field_raw("heavy_regions", &heavy)
            .field_u64("delta_count", self.delta_count)
            .field_f64("delta_mean", self.delta_mean)
            .field_u64("delta_p50", self.delta_p50)
            .field_u64("delta_p90", self.delta_p90)
            .field_u64("delta_p99", self.delta_p99)
            .field_u64("delta_max", self.delta_max);
        o.finish()
    }

    /// Human-readable rendering for the CLI.
    pub fn render(&self, top: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "sketch of {} — {} records, {} words (heavy-hitter capacity {}, max overcount {})\n",
            self.label, self.records, self.words, self.capacity, self.error_bound
        ));
        out.push_str("-- regions by estimated words:\n");
        for h in self.heavy.iter().take(top) {
            out.push_str(&format!(
                "  {:>14} (±{:>10})  {}\n",
                h.words, h.err, h.region
            ));
        }
        out.push_str(&format!(
            "-- |addr delta| quantiles: p50 {} · p90 {} · p99 {} · max {} (mean {:.1})\n",
            self.delta_p50, self.delta_p90, self.delta_p99, self.delta_max, self.delta_mean
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agave_trace::XorShift64;
    use std::collections::BTreeMap;

    #[test]
    fn space_saving_bounds_hold_on_a_skewed_stream() {
        // Zipf-ish synthetic stream over 200 keys, sketch capacity 16.
        let mut rng = XorShift64::new(0xa6a7e);
        let mut sketch = SpaceSaving::new(16);
        let mut exact: BTreeMap<u32, u64> = BTreeMap::new();
        for _ in 0..200_000 {
            // Skew: low keys drawn far more often.
            let key = (rng.below(200) * rng.below(200) / 200) as u32;
            let weight = 1 + rng.below(7);
            sketch.offer(key, weight);
            *exact.entry(key).or_default() += weight;
        }
        let total: u64 = exact.values().sum();
        assert_eq!(sketch.total_weight(), total);
        let bound = sketch.error_bound();
        for e in sketch.ranked() {
            let truth = exact.get(&e.key).copied().unwrap_or(0);
            assert!(e.count >= truth, "estimate must upper-bound truth");
            assert!(
                e.count - e.err <= truth,
                "key {}: est {} err {} truth {truth}",
                e.key,
                e.count,
                e.err
            );
            assert!(e.err <= bound, "per-entry error beyond W/k");
        }
        // Completeness: every key heavier than W/k must be tracked.
        let tracked: Vec<u32> = sketch.ranked().iter().map(|e| e.key).collect();
        for (&key, &w) in &exact {
            if w > bound {
                assert!(tracked.contains(&key), "heavy key {key} (w={w}) missing");
            }
        }
    }

    #[test]
    fn space_saving_is_exact_under_capacity() {
        let mut sketch = SpaceSaving::new(8);
        for (key, w) in [(1u32, 50u64), (2, 30), (1, 25), (3, 5)] {
            sketch.offer(key, w);
        }
        let ranked = sketch.ranked();
        assert_eq!(
            ranked[0],
            HeavyEntry {
                key: 1,
                count: 75,
                err: 0
            }
        );
        assert_eq!(
            ranked[1],
            HeavyEntry {
                key: 2,
                count: 30,
                err: 0
            }
        );
        assert_eq!(
            ranked[2],
            HeavyEntry {
                key: 3,
                count: 5,
                err: 0
            }
        );
    }

    #[test]
    fn quantile_sketch_brackets_true_order_statistics() {
        let mut rng = XorShift64::new(7);
        let mut q = Log2Quantiles::new();
        let mut samples = Vec::new();
        for _ in 0..10_000 {
            let v = rng.below(1 << 20);
            q.record(v);
            samples.push(v);
        }
        samples.sort_unstable();
        for (frac, name) in [(0.5, "p50"), (0.9, "p90"), (0.99, "p99")] {
            let rank = ((frac * samples.len() as f64).ceil() as usize).max(1) - 1;
            let truth = samples[rank];
            let est = q.quantile(frac);
            assert!(est >= truth, "{name}: est {est} below truth {truth}");
            assert!(
                est <= truth.max(1) * 2,
                "{name}: est {est} beyond 2x truth {truth}"
            );
        }
        assert!(q.quantile(1.0) >= *samples.last().unwrap());
        assert_eq!(Log2Quantiles::new().quantile(0.5), 0);
    }

    #[test]
    fn sketch_sink_memory_is_capacity_bound_and_report_is_deterministic() {
        use agave_trace::{RefKind, SharedSink, Tracer};
        use std::cell::RefCell;
        use std::rc::Rc;
        fn run() -> (SketchReport, usize) {
            let sink = Rc::new(RefCell::new(SketchSink::new(4)));
            let mut t = Tracer::new();
            t.add_sink(sink.clone() as SharedSink);
            let pid = t.register_process("p");
            let tid = t.register_thread(pid, "t");
            // 40 regions through a capacity-4 sketch.
            let regions: Vec<_> = (0..40)
                .map(|i| t.intern_region(&format!("lib{i:02}.so")))
                .collect();
            for round in 0..50u64 {
                for (i, &r) in regions.iter().enumerate() {
                    t.charge(pid, tid, r, RefKind::DataRead, 1 + (i as u64 * round) % 13);
                }
            }
            t.flush_sinks();
            let dir = t.name_directory();
            let tracked = sink.borrow().regions().ranked().len();
            let report = sink.borrow().report("synthetic", &dir);
            (report, tracked)
        }
        let (a, tracked) = run();
        let (b, _) = run();
        assert_eq!(a, b, "sketch must be deterministic");
        assert_eq!(a.to_json(), b.to_json());
        assert!(tracked <= 4, "memory exceeded capacity");
        assert_eq!(a.heavy.len(), 4);
        assert!(a.delta_count == a.records - 1);
        assert!(a.render(4).contains("regions by estimated words"));
    }
}
