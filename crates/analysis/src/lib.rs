//! The analysis registry: every trace analysis behind one abstraction.
//!
//! Before this crate, the suite computed analyses in three hand-rolled
//! copies of the same shape — the live engine path in `agave-core`, the
//! local replay verbs in `core/record.rs`, and the serve daemon's
//! `ANALYZE` handler — each wiring a sink to a stream and rendering a
//! report by hand. This crate is the single home for that shape:
//!
//! * [`AnalysisPass`] — one analysis in flight: a sink factory (what to
//!   attach to the reference stream) plus a JSON finish (what to render
//!   when the stream ends). A pass works identically whether the stream
//!   comes from a live simulation or a [`TraceReader`] replay, which is
//!   what keeps live and replayed output byte-identical.
//! * The registry ([`kinds`], [`resolve`]) — maps analysis *specs*
//!   (`summary`, `cache:<geometry>`, `sketch[:capacity]`) to passes.
//!   `core` replay verbs, `agave cache`, and the serve `ANALYZE` verb
//!   all resolve through it; unknown specs list what is valid.
//! * [`analyze_path`] — spec + `.agtrace` path → canonical JSON, the
//!   one entry point the CLI and the server both call.
//! * [`sweep`] — the fan-out engine built on the unified layer: one
//!   trace decode feeding N independent cache hierarchies.
//!
//! Concrete passes stay public ([`SummaryPass`], [`CachePass`],
//! [`SketchPass`]) so callers that want the *typed* result — a
//! [`RunSummary`], a [`CacheReport`] — can drive the same factory/finish
//! pair without going through JSON.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod sketch;
pub mod sweep;

pub use sketch::{HeavyEntry, HeavyRegion, Log2Quantiles, SketchReport, SketchSink, SpaceSaving};
pub use sweep::{sweep_path, FanoutSink, GridSpec, SweepCell, SweepReport};

use agave_cache::{CacheReport, HierarchyGeometry, MemoryHierarchy};
use agave_replay::{ReplayOutcome, SummaryAccumulator, TraceBuffer, TraceError};
use agave_trace::{NameDirectory, RunSummary, SharedSink};
use std::cell::RefCell;
use std::path::Path;
use std::rc::Rc;

/// One analysis in flight: where its sink is, and how it renders.
///
/// The contract mirrors the replay loop: attach [`AnalysisPass::sink`]
/// to a reference stream (live tracer or trace reader — both deliver
/// through the same batched `SINK_BATCH` path), let the stream drain,
/// then call [`AnalysisPass::finish_json`] with the replay outcome.
pub trait AnalysisPass {
    /// The sink to attach to the reference stream. Every call returns a
    /// handle to the *same* underlying sink, so a pass accumulates one
    /// result no matter how many times this is called.
    fn sink(&self) -> SharedSink;

    /// Telemetry phase-span name covering this pass's decode + walk.
    fn span_name(&self) -> &'static str;

    /// Renders the finished analysis as its canonical JSON — the exact
    /// bytes `agave replay` prints and the serve daemon ships.
    fn finish_json(&self, outcome: &ReplayOutcome) -> String;
}

/// Rebuilds the recorded run's [`RunSummary`] (the `summary` spec).
pub struct SummaryPass {
    acc: Rc<RefCell<SummaryAccumulator>>,
}

impl SummaryPass {
    /// A fresh pass.
    pub fn new() -> Self {
        SummaryPass {
            acc: Rc::new(RefCell::new(SummaryAccumulator::new())),
        }
    }

    /// The typed result: the summary the live run would have produced.
    pub fn finish(&self, outcome: &ReplayOutcome) -> RunSummary {
        self.acc.borrow().build(outcome)
    }
}

impl Default for SummaryPass {
    fn default() -> Self {
        Self::new()
    }
}

impl AnalysisPass for SummaryPass {
    fn sink(&self) -> SharedSink {
        self.acc.clone()
    }

    fn span_name(&self) -> &'static str {
        "replay summary"
    }

    fn finish_json(&self, outcome: &ReplayOutcome) -> String {
        self.finish(outcome).to_json()
    }
}

/// Replays the stream through one [`MemoryHierarchy`] (the
/// `cache:<geometry>` spec).
pub struct CachePass {
    hierarchy: Rc<RefCell<MemoryHierarchy>>,
}

impl CachePass {
    /// A pass over a fresh hierarchy of `geometry`.
    pub fn new(geometry: HierarchyGeometry) -> Self {
        CachePass {
            hierarchy: Rc::new(RefCell::new(MemoryHierarchy::new(geometry))),
        }
    }

    /// The typed result for a replayed stream.
    pub fn finish(&self, outcome: &ReplayOutcome) -> CacheReport {
        self.report(&outcome.label, &outcome.directory)
    }

    /// The typed result with an explicit label/directory — the live
    /// engine path, where the label is the workload's rather than a
    /// trace header's.
    pub fn report(&self, label: &str, directory: &NameDirectory) -> CacheReport {
        self.hierarchy.borrow().report(label, directory)
    }
}

impl AnalysisPass for CachePass {
    fn sink(&self) -> SharedSink {
        self.hierarchy.clone()
    }

    fn span_name(&self) -> &'static str {
        "hierarchy walk"
    }

    fn finish_json(&self, outcome: &ReplayOutcome) -> String {
        self.finish(outcome).to_json()
    }
}

/// Bounded-memory streaming sketches (the `sketch[:capacity]` spec).
pub struct SketchPass {
    sink: Rc<RefCell<SketchSink>>,
}

impl SketchPass {
    /// A pass tracking at most `capacity` heavy-hitter regions.
    pub fn new(capacity: usize) -> Self {
        SketchPass {
            sink: Rc::new(RefCell::new(SketchSink::new(capacity))),
        }
    }

    /// The typed result for a replayed stream.
    pub fn finish(&self, outcome: &ReplayOutcome) -> SketchReport {
        self.sink
            .borrow()
            .report(&outcome.label, &outcome.directory)
    }
}

impl AnalysisPass for SketchPass {
    fn sink(&self) -> SharedSink {
        self.sink.clone()
    }

    fn span_name(&self) -> &'static str {
        "sketch pass"
    }

    fn finish_json(&self, outcome: &ReplayOutcome) -> String {
        self.finish(outcome).to_json()
    }
}

/// Pass factory: builds a kind's pass from its optional `:`-argument.
type BuildFn = fn(Option<&str>) -> Result<Box<dyn AnalysisPass>, String>;

/// One registered analysis kind: its spec grammar and pass factory.
pub struct AnalysisKind {
    /// Spec name before the `:` (`"summary"`, `"cache"`, `"sketch"`).
    pub name: &'static str,
    /// Full spec grammar for diagnostics (`"cache:<geometry>"`).
    pub usage: &'static str,
    /// One-line description for help output.
    pub help: &'static str,
    build: BuildFn,
}

impl AnalysisKind {
    /// Builds a pass from this kind's optional `:`-argument.
    pub fn build(&self, arg: Option<&str>) -> Result<Box<dyn AnalysisPass>, String> {
        (self.build)(arg)
    }
}

/// Every analysis the suite knows, in help order.
pub fn kinds() -> &'static [AnalysisKind] {
    const KINDS: [AnalysisKind; 3] = [
        AnalysisKind {
            name: "summary",
            usage: "summary",
            help: "rebuild the recorded run's RunSummary",
            build: |arg| match arg {
                None => Ok(Box::new(SummaryPass::new())),
                Some(extra) => Err(format!("summary takes no argument, got {extra:?}")),
            },
        },
        AnalysisKind {
            name: "cache",
            usage: "cache:<geometry>",
            help: "replay through a memory hierarchy (preset or size=..,assoc=..,line=.. cell)",
            build: |arg| {
                let geometry = HierarchyGeometry::by_name(arg.unwrap_or("cortex-a9"))
                    .map_err(|e| e.to_string())?;
                Ok(Box::new(CachePass::new(geometry)))
            },
        },
        AnalysisKind {
            name: "sketch",
            usage: "sketch[:capacity]",
            help: "bounded-memory heavy-hitter regions + address-delta quantiles",
            build: |arg| {
                let capacity = match arg {
                    None => SketchSink::DEFAULT_CAPACITY,
                    Some(n) => n
                        .parse::<usize>()
                        .ok()
                        .filter(|&c| c >= 1)
                        .ok_or_else(|| format!("bad sketch capacity {n:?}"))?,
                };
                Ok(Box::new(SketchPass::new(capacity)))
            },
        },
    ];
    &KINDS
}

/// Resolves an analysis spec (`name[:arg]`) to a ready pass. Unknown
/// names list every registered spec.
pub fn resolve(spec: &str) -> Result<Box<dyn AnalysisPass>, String> {
    let (name, arg) = match spec.split_once(':') {
        Some((name, arg)) => (name, Some(arg)),
        None => (spec, None),
    };
    kinds()
        .iter()
        .find(|k| k.name == name)
        .ok_or_else(|| {
            let valid: Vec<&str> = kinds().iter().map(|k| k.usage).collect();
            format!("unknown analysis {spec:?}; valid: {}", valid.join(", "))
        })?
        .build(arg)
}

/// Replays `path` through `pass` and renders its canonical JSON — one
/// buffered read, chunks decoded on up to `jobs` workers (0 = one per
/// CPU, 1 = serial), batches delivered exactly as the live `SINK_BATCH`
/// path delivers them. Output is byte-identical for every `jobs`.
pub fn run_pass(path: &Path, pass: &dyn AnalysisPass, jobs: usize) -> Result<String, TraceError> {
    let mut span =
        agave_telemetry::Span::enter_labeled(pass.span_name(), &path.display().to_string());
    let buf = TraceBuffer::open(path)?;
    let outcome = buf.replay(&[pass.sink()], jobs)?;
    span.set_refs(outcome.words);
    Ok(pass.finish_json(&outcome))
}

/// Spec + trace path → canonical analysis JSON. The single entry point
/// the `agave replay` CLI and the serve `ANALYZE` verb both call.
/// `jobs` is the decode worker count; the JSON is identical for all
/// values.
pub fn analyze_path(path: &Path, spec: &str, jobs: usize) -> Result<String, String> {
    let pass = resolve(spec)?;
    run_pass(path, pass.as_ref(), jobs).map_err(|e| e.to_string())
}

/// Replays `path` through a fresh hierarchy of `geometry` and returns
/// the typed [`CacheReport`] — byte-identical (as JSON) to the live
/// run's report and to [`analyze_path`] with `cache:<geometry.name>`.
pub fn replay_cache(
    path: &Path,
    geometry: HierarchyGeometry,
    jobs: usize,
) -> Result<CacheReport, TraceError> {
    let mut span =
        agave_telemetry::Span::enter_labeled("hierarchy walk", &path.display().to_string());
    let pass = CachePass::new(geometry);
    let buf = TraceBuffer::open(path)?;
    let outcome = buf.replay(&[pass.sink()], jobs)?;
    span.set_refs(outcome.words);
    Ok(pass.finish(&outcome))
}

#[cfg(test)]
pub(crate) mod fixture {
    use agave_replay::TraceWriter;
    use agave_trace::{RefKind, SharedSink, Tracer};
    use std::cell::RefCell;
    use std::path::{Path, PathBuf};
    use std::rc::Rc;

    /// Records a small deterministic two-region stream to
    /// `<tmp>/agave-analysis-test-<pid>-<stem>.agtrace`.
    pub fn record(stem: &str) -> PathBuf {
        let path = std::env::temp_dir().join(format!(
            "agave-analysis-test-{}-{stem}.agtrace",
            std::process::id()
        ));
        record_at(&path, stem);
        path
    }

    pub fn record_at(path: &Path, label: &str) {
        let mut t = Tracer::new();
        let pid = t.register_process("app_process");
        let tid = t.register_thread(pid, "main");
        let code = t.intern_region("[app].text");
        let heap = t.intern_region("[heap]");
        let baseline = t.counter_snapshot();
        let writer = Rc::new(RefCell::new(TraceWriter::create(path, label).unwrap()));
        t.add_sink(writer.clone() as SharedSink);
        for i in 0..6000u64 {
            t.charge_at(
                pid,
                tid,
                code,
                RefKind::InstrFetch,
                0x1000 + 4 * (i % 512),
                1,
            );
            if i.is_multiple_of(3) {
                t.charge_at(pid, tid, heap, RefKind::DataRead, 0x8000_0000 + 64 * i, 2);
            }
        }
        t.flush_sinks();
        writer
            .borrow_mut()
            .finish(&t.name_directory(), &baseline)
            .unwrap();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_specs_resolve_and_unknowns_list_valid() {
        for spec in [
            "summary",
            "cache",
            "cache:tiny",
            "cache:size=16k,assoc=2,line=32",
            "sketch",
            "sketch:8",
        ] {
            assert!(resolve(spec).is_ok(), "{spec} should resolve");
        }
        let err = resolve("entropy").map(|_| ()).unwrap_err();
        assert!(
            err.contains("summary") && err.contains("cache:<geometry>"),
            "{err}"
        );
        let err = resolve("cache:nope").map(|_| ()).unwrap_err();
        assert!(err.contains("cortex-a9") && err.contains("tiny"), "{err}");
        assert!(resolve("summary:x").is_err());
        assert!(resolve("sketch:0").is_err());
    }

    #[test]
    fn analyze_path_matches_the_typed_helpers() {
        let path = fixture::record("registry");
        let summary = analyze_path(&path, "summary", 1).unwrap();
        assert_eq!(
            summary,
            agave_replay::replay_summary(&path, 1).unwrap().to_json()
        );
        let cache = analyze_path(&path, "cache:tiny", 1).unwrap();
        let typed = replay_cache(&path, HierarchyGeometry::tiny(), 1).unwrap();
        assert_eq!(cache, typed.to_json());
        assert!(cache.contains(r#""preset":"tiny""#));
        let sketch = analyze_path(&path, "sketch", 1).unwrap();
        assert!(sketch.contains("\"heavy_regions\""));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn analyze_path_is_jobs_independent() {
        let path = fixture::record("jobs-indep");
        for spec in ["summary", "cache:tiny", "sketch"] {
            let serial = analyze_path(&path, spec, 1).unwrap();
            for jobs in [2, 8, 0] {
                assert_eq!(
                    analyze_path(&path, spec, jobs).unwrap(),
                    serial,
                    "{spec} with jobs={jobs} must match serial output"
                );
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn cache_cells_resolve_to_standalone_reports() {
        let path = fixture::record("cell");
        let via_spec = analyze_path(&path, "cache:size=1k,assoc=2,line=16", 1).unwrap();
        assert!(via_spec.contains(r#""preset":"size=1k,assoc=2,line=16""#));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_trace_is_a_clean_error() {
        let err = analyze_path(Path::new("/nonexistent/never.agtrace"), "summary", 1).unwrap_err();
        assert!(!err.is_empty());
    }
}
