//! Design-space sweeps: one trace decode fanned out to N cache
//! hierarchies — the Figure-5 sensitivity surface (miss rate vs. size ×
//! associativity × line size) without re-decoding, let alone
//! re-simulating, per cell.
//!
//! The paper's headline figure is a cache design-space exploration, but
//! reproducing even one cell used to cost a full replay. Every grid
//! cell consumes the *same* decoded stream, so the sweep amortizes
//! everything that doesn't depend on a cell's private L1/L2 state:
//! [`FanoutSink`] rides the standard batched sink path, decodes once,
//! runs the walk's shared front half (line splitting, TLB simulation,
//! stat-row bookkeeping — see [`agave_cache::PlanBuilder`]) once per
//! line-size group, and hands each cell only its private probe replay
//! ([`MemoryHierarchy::apply_plan`]), sharding the cells across
//! [`parallel_map`] workers.
//!
//! # Determinism
//!
//! Output is independent of `--jobs`: parallelism is *across cells*,
//! never within one. Each hierarchy is touched by at most one worker
//! per batch (a `Mutex` per cell makes that explicit), processes the
//! batches in stream order because `on_batch` calls are serial, and
//! never observes another cell's state. Results are merged in grid
//! order (size-major, then associativity, then line). Every cell's
//! report is additionally byte-identical to a standalone
//! `agave replay --cache <cell-name>` run: the cell's canonical name
//! round-trips through [`HierarchyGeometry::by_name`] to the identical
//! geometry, and a hierarchy only ever sees the stream, which is the
//! same stream. `tests/sweep_determinism.rs` asserts all of this.

use agave_cache::{
    format_size, BatchPlan, CacheReport, HierarchyGeometry, Level, MemoryHierarchy, PlanBuilder,
};
use agave_replay::TraceBuffer;
use agave_trace::json;
use agave_trace::par::{effective_jobs, parallel_map};
use agave_trace::{NameDirectory, Reference, ReferenceSink};
use std::path::Path;
use std::sync::Mutex;

/// The axes of a sweep: every combination of L1 capacity ×
/// associativity × line size becomes one grid cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridSpec {
    /// L1 capacities in bytes (the `size=` axis).
    pub sizes: Vec<u64>,
    /// Associativities (the `assoc=` axis).
    pub assocs: Vec<u32>,
    /// Line sizes in bytes (the `line=` axis).
    pub lines: Vec<u32>,
}

impl GridSpec {
    /// Parses `size=16k,32k,64k:assoc=2,4,8:line=32,64` — three
    /// `:`-separated axes, each a comma list, each key exactly once.
    pub fn parse(grid: &str) -> Result<Self, String> {
        let mut sizes: Option<Vec<u64>> = None;
        let mut assocs: Option<Vec<u64>> = None;
        let mut lines: Option<Vec<u64>> = None;
        for axis in grid.split(':') {
            let (key, values) = axis
                .split_once('=')
                .ok_or_else(|| format!("expected key=v1,v2,..., got {axis:?}"))?;
            let slot = match key {
                "size" => &mut sizes,
                "assoc" => &mut assocs,
                "line" => &mut lines,
                other => {
                    return Err(format!(
                        "unknown grid axis {other:?} (want size, assoc, line)"
                    ))
                }
            };
            if slot.is_some() {
                return Err(format!("duplicate grid axis {key:?}"));
            }
            let parsed: Vec<u64> = values
                .split(',')
                .map(|v| agave_cache::parse_size(v).ok_or_else(|| format!("bad {key} value {v:?}")))
                .collect::<Result<_, _>>()?;
            if parsed.is_empty() {
                return Err(format!("empty {key} axis"));
            }
            *slot = Some(parsed);
        }
        let (Some(sizes), Some(assocs), Some(lines)) = (sizes, assocs, lines) else {
            return Err("grid needs all of size=, assoc=, line= axes".to_owned());
        };
        let narrow = |vs: Vec<u64>, what: &str| -> Result<Vec<u32>, String> {
            vs.into_iter()
                .map(|v| u32::try_from(v).map_err(|_| format!("{what} too large ({v})")))
                .collect()
        };
        Ok(GridSpec {
            sizes,
            assocs: narrow(assocs, "assoc")?,
            lines: narrow(lines, "line")?,
        })
    }

    /// Number of cells (`|size| × |assoc| × |line|`).
    pub fn len(&self) -> usize {
        self.sizes.len() * self.assocs.len() * self.lines.len()
    }

    /// True when any axis is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The canonical spelling of the grid (sizes rendered `16k`-style).
    pub fn canonical(&self) -> String {
        let join_u64 = |vs: &[u64]| {
            vs.iter()
                .map(|&v| format_size(v))
                .collect::<Vec<_>>()
                .join(",")
        };
        let join_u32 = |vs: &[u32]| vs.iter().map(u32::to_string).collect::<Vec<_>>().join(",");
        format!(
            "size={}:assoc={}:line={}",
            join_u64(&self.sizes),
            join_u32(&self.assocs),
            join_u32(&self.lines)
        )
    }

    /// Every cell's geometry in grid order (size-major, then
    /// associativity, then line). Fails on the first invalid
    /// combination, naming it.
    pub fn cells(&self) -> Result<Vec<HierarchyGeometry>, String> {
        let mut out = Vec::with_capacity(self.len());
        for &size in &self.sizes {
            for &assoc in &self.assocs {
                for &line in &self.lines {
                    out.push(HierarchyGeometry::with_l1(size, assoc, line).map_err(|e| {
                        format!(
                            "cell size={},assoc={assoc},line={line}: {e}",
                            format_size(size)
                        )
                    })?);
                }
            }
        }
        Ok(out)
    }
}

impl std::fmt::Display for GridSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.canonical())
    }
}

/// A [`ReferenceSink`] that feeds every decoded batch to N private
/// hierarchies, sharded across up to `jobs` workers.
///
/// Beyond sharing the decode, the fan-out shares the walk's front half:
/// cells are grouped by [`HierarchyGeometry::plan_signature`] (line
/// sizes + TLB shapes — for an L1 sweep grid, one group per line size),
/// and each group's [`PlanBuilder`] runs line splitting, TLB simulation
/// and stat-row bookkeeping exactly once per batch. Cells then replay
/// only their private L1/L2 probes via
/// [`MemoryHierarchy::apply_plan`], which `crates/cache`'s
/// `apply_plan_matches_direct_walk_for_shared_signature` property test
/// pins byte-identical to the direct walk.
///
/// Each cell sits behind its own `Mutex` — uncontended, because
/// [`parallel_map`] gives each index to exactly one worker — so the
/// fan-out closure stays `Fn` while each hierarchy is mutated serially.
pub struct FanoutSink {
    cells: Vec<Mutex<MemoryHierarchy>>,
    /// One shared walk per plan signature, with the member `cells`
    /// index mapping in `group_of`.
    planners: Vec<PlanBuilder>,
    group_of: Vec<usize>,
    jobs: usize,
}

impl FanoutSink {
    /// A fan-out over fresh hierarchies of the given geometries.
    pub fn new(geometries: &[HierarchyGeometry], jobs: usize) -> Self {
        let mut planners = Vec::new();
        let mut signatures = Vec::new();
        let group_of = geometries
            .iter()
            .map(|g| {
                let sig = g.plan_signature();
                signatures
                    .iter()
                    .position(|&s| s == sig)
                    .unwrap_or_else(|| {
                        signatures.push(sig);
                        planners.push(PlanBuilder::new(*g));
                        planners.len() - 1
                    })
            })
            .collect();
        FanoutSink {
            cells: geometries
                .iter()
                .map(|&g| Mutex::new(MemoryHierarchy::new(g)))
                .collect(),
            planners,
            group_of,
            jobs,
        }
    }

    /// Per-cell reports, in construction (grid) order.
    pub fn reports(&self, label: &str, directory: &NameDirectory) -> Vec<CacheReport> {
        self.cells
            .iter()
            .map(|cell| {
                cell.lock()
                    .expect("sweep cell poisoned")
                    .report(label, directory)
            })
            .collect()
    }
}

impl ReferenceSink for FanoutSink {
    fn on_reference(&mut self, r: &Reference) {
        self.on_batch(std::slice::from_ref(r));
    }

    fn on_batch(&mut self, batch: &[Reference]) {
        if agave_telemetry::enabled() {
            agave_telemetry::metrics::counter("sweep.batches").incr();
        }
        let plans: Vec<&BatchPlan> = self
            .planners
            .iter_mut()
            .map(|planner| planner.plan(batch))
            .collect();
        let cells = &self.cells;
        let group_of = &self.group_of;
        parallel_map(cells.len(), self.jobs, |i| {
            let mut hierarchy = cells[i].lock().expect("sweep cell poisoned");
            hierarchy.apply_plan(plans[group_of[i]]);
        });
    }
}

/// One cell of a finished sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// L1 capacity in bytes.
    pub size: u64,
    /// L1 associativity.
    pub assoc: u32,
    /// L1 line size in bytes.
    pub line: u32,
    /// The cell's full report — byte-identical to a standalone
    /// `agave replay --cache <name>` of the same trace.
    pub report: CacheReport,
}

impl SweepCell {
    /// The cell's canonical geometry name
    /// (`size=16k,assoc=2,line=32`) — resolvable via
    /// [`HierarchyGeometry::by_name`].
    pub fn name(&self) -> &str {
        &self.report.preset
    }

    fn to_json(&self) -> String {
        let mut o = json::Object::new();
        o.field_str("name", self.name())
            .field_str("size", &format_size(self.size))
            .field_u64("assoc", u64::from(self.assoc))
            .field_u64("line", u64::from(self.line))
            .field_raw("report", &self.report.to_json());
        o.finish()
    }
}

/// A finished design-space sweep: one report per grid cell, plus the
/// per-region / per-process sensitivity the cells imply.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// The recorded workload's label.
    pub label: String,
    /// Canonical grid spec.
    pub grid: String,
    /// Reference blocks replayed (once — shared by every cell).
    pub records: u64,
    /// Words those blocks span.
    pub words: u64,
    /// Cells in grid order.
    pub cells: Vec<SweepCell>,
}

/// How one row's L1 miss rate moves across the grid: its best and
/// worst cells.
struct Sensitivity<'a> {
    name: &'a str,
    min_rate: f64,
    min_cell: &'a str,
    max_rate: f64,
    max_cell: &'a str,
}

impl SweepReport {
    /// Combined L1 (I+D) miss rate of a report row named `name`, if the
    /// cell saw traffic for it.
    fn row_l1_rate(report: &CacheReport, processes: bool, name: &str) -> Option<f64> {
        let rows = if processes {
            &report.processes
        } else {
            &report.regions
        };
        let row = rows.iter().find(|r| r.name == name)?;
        let (i, d) = (row.level(Level::L1i), row.level(Level::L1d));
        let accesses = i.accesses() + d.accesses();
        if accesses == 0 {
            return None;
        }
        Some((i.misses + d.misses) as f64 / accesses as f64)
    }

    /// Min/max L1 miss rate across cells for the top `top` rows of the
    /// first cell (regions or processes).
    fn sensitivities(&self, processes: bool, top: usize) -> Vec<Sensitivity<'_>> {
        let Some(first) = self.cells.first() else {
            return Vec::new();
        };
        let rows = if processes {
            &first.report.processes
        } else {
            &first.report.regions
        };
        rows.iter()
            .take(top)
            .filter_map(|row| {
                let mut min: Option<(f64, &str)> = None;
                let mut max: Option<(f64, &str)> = None;
                for cell in &self.cells {
                    let rate = Self::row_l1_rate(&cell.report, processes, &row.name)?;
                    if min.is_none_or(|(m, _)| rate < m) {
                        min = Some((rate, cell.name()));
                    }
                    if max.is_none_or(|(m, _)| rate > m) {
                        max = Some((rate, cell.name()));
                    }
                }
                let (min, max) = (min?, max?);
                Some(Sensitivity {
                    name: &row.name,
                    min_rate: min.0,
                    min_cell: min.1,
                    max_rate: max.0,
                    max_cell: max.1,
                })
            })
            .collect()
    }

    /// The Fig-5-style text rendering: one row per cell, then the
    /// per-region and per-process L1 sensitivity tables.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Design-space sweep of {} — {} cells over {} ({} records, {} words decoded once)\n",
            self.label,
            self.cells.len(),
            self.grid,
            self.records,
            self.words
        );
        out.push_str(&format!(
            "{:>8} {:>6} {:>5} {:>8} {:>8} {:>8} {:>8} {:>8}\n",
            "size", "assoc", "line", "L1I%", "L1D%", "L2%", "ITLB%", "DTLB%"
        ));
        for cell in &self.cells {
            let pct = |level: Level| cell.report.total(level).miss_rate() * 100.0;
            out.push_str(&format!(
                "{:>8} {:>6} {:>5} {:>7.3}% {:>7.3}% {:>7.3}% {:>7.3}% {:>7.3}%\n",
                format_size(cell.size),
                cell.assoc,
                cell.line,
                pct(Level::L1i),
                pct(Level::L1d),
                pct(Level::L2),
                pct(Level::Itlb),
                pct(Level::Dtlb),
            ));
        }
        for (processes, title) in [(false, "region"), (true, "process")] {
            let rows = self.sensitivities(processes, 8);
            if rows.is_empty() {
                continue;
            }
            out.push_str(&format!("-- L1 miss-rate sensitivity by {title}:\n"));
            for s in rows {
                out.push_str(&format!(
                    "  {:<28} {:>7.3}% @ {:<28} {:>7.3}% @ {}\n",
                    s.name,
                    s.min_rate * 100.0,
                    s.min_cell,
                    s.max_rate * 100.0,
                    s.max_cell,
                ));
            }
        }
        out
    }

    /// Deterministic JSON: grid metadata plus every cell's full report
    /// (each `report` value byte-identical to that cell's standalone
    /// `agave replay --cache <name> --json` output).
    pub fn to_json(&self) -> String {
        let mut o = json::Object::new();
        o.field_str("label", &self.label)
            .field_str("grid", &self.grid)
            .field_u64("records", self.records)
            .field_u64("words", self.words)
            .field_raw(
                "cells",
                &json::array(self.cells.iter().map(SweepCell::to_json)),
            );
        o.finish()
    }
}

/// Runs the sweep: decodes the trace at `path` once and replays it
/// through one hierarchy per grid cell. `jobs` bounds both halves of
/// the pipeline — the chunk decode workers and the per-batch cell
/// fan-out (0 = one per CPU; output is identical for any `jobs`).
pub fn sweep_path(path: &Path, grid: &GridSpec, jobs: usize) -> Result<SweepReport, String> {
    let geometries = grid.cells()?;
    if geometries.is_empty() {
        return Err("empty grid".to_owned());
    }
    let mut span = agave_telemetry::Span::enter_labeled("trace sweep", &path.display().to_string());
    if agave_telemetry::enabled() {
        agave_telemetry::metrics::gauge("sweep.cells").set(geometries.len() as u64);
        agave_telemetry::metrics::gauge("sweep.jobs").set(effective_jobs(jobs) as u64);
    }
    let buf = TraceBuffer::open(path).map_err(|e| e.to_string())?;
    let fanout = std::rc::Rc::new(std::cell::RefCell::new(FanoutSink::new(&geometries, jobs)));
    let outcome = buf
        .replay(&[fanout.clone() as agave_trace::SharedSink], jobs)
        .map_err(|e| e.to_string())?;
    span.set_refs(outcome.words);
    let reports = fanout.borrow().reports(&outcome.label, &outcome.directory);
    let mut cells = Vec::with_capacity(reports.len());
    let mut reports = reports.into_iter();
    for &size in &grid.sizes {
        for &assoc in &grid.assocs {
            for &line in &grid.lines {
                cells.push(SweepCell {
                    size,
                    assoc,
                    line,
                    report: reports.next().expect("one report per cell"),
                });
            }
        }
    }
    Ok(SweepReport {
        label: outcome.label,
        grid: grid.canonical(),
        records: outcome.records,
        words: outcome.words,
        cells,
    })
}

/// One cell of the grid replayed standalone — what `agave replay
/// --cache <cell>` computes; the sweep's per-cell byte-identity anchor.
pub fn sweep_cell_standalone(path: &Path, name: &str) -> Result<CacheReport, String> {
    let geometry = HierarchyGeometry::by_name(name).map_err(|e| e.to_string())?;
    crate::replay_cache(path, geometry, 1).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixture;

    #[test]
    fn grid_parses_and_canonicalizes() {
        let grid = GridSpec::parse("size=16k,32k:assoc=2,4:line=32,64").unwrap();
        assert_eq!(grid.sizes, vec![16 * 1024, 32 * 1024]);
        assert_eq!(grid.assocs, vec![2, 4]);
        assert_eq!(grid.lines, vec![32, 64]);
        assert_eq!(grid.len(), 8);
        assert_eq!(grid.canonical(), "size=16k,32k:assoc=2,4:line=32,64");
        // Non-canonical spellings canonicalize.
        let same = GridSpec::parse("line=32,64:size=16384,32768:assoc=2,4").unwrap();
        assert_eq!(same.canonical(), grid.canonical());
    }

    #[test]
    fn grid_rejects_malformed_specs() {
        for bad in [
            "size=16k:assoc=2",                  // missing axis
            "size=16k:assoc=2:line=32:size=32k", // duplicate axis
            "size=16k:assoc=2:line=32:zap=1",    // unknown axis
            "size=16q:assoc=2:line=32",          // bad number
            "size=:assoc=2:line=32",             // empty axis
            "sizes",                             // no key=value
        ] {
            assert!(GridSpec::parse(bad).is_err(), "{bad} should be rejected");
        }
        // Parse succeeds but the cell is geometrically invalid.
        let grid = GridSpec::parse("size=24k:assoc=2:line=32").unwrap();
        let err = grid.cells().unwrap_err();
        assert!(err.contains("size=24k,assoc=2,line=32"), "{err}");
    }

    #[test]
    fn cells_are_grid_ordered_and_named_canonically() {
        let grid = GridSpec::parse("size=16k,32k:assoc=2:line=32,64").unwrap();
        let names: Vec<&str> = grid.cells().unwrap().iter().map(|g| g.name).collect();
        assert_eq!(
            names,
            [
                "size=16k,assoc=2,line=32",
                "size=16k,assoc=2,line=64",
                "size=32k,assoc=2,line=32",
                "size=32k,assoc=2,line=64",
            ]
        );
    }

    #[test]
    fn sweep_cells_match_standalone_replays_for_any_jobs() {
        let path = fixture::record("sweep-unit");
        let grid = GridSpec::parse("size=1k,2k:assoc=2:line=16").unwrap();
        let serial = sweep_path(&path, &grid, 1).unwrap();
        let parallel = sweep_path(&path, &grid, 4).unwrap();
        assert_eq!(serial, parallel, "sweep output must be jobs-independent");
        assert_eq!(serial.to_json(), parallel.to_json());
        assert_eq!(serial.cells.len(), 2);
        for cell in &serial.cells {
            let standalone = sweep_cell_standalone(&path, cell.name()).unwrap();
            assert_eq!(cell.report, standalone);
            assert_eq!(cell.report.to_json(), standalone.to_json());
            assert!(
                serial.to_json().contains(&standalone.to_json()),
                "sweep JSON must embed the standalone cell report verbatim"
            );
        }
        let text = serial.render();
        assert!(text.contains("Design-space sweep"), "{text}");
        assert!(text.contains("sensitivity by region"), "{text}");
        std::fs::remove_file(&path).ok();
    }
}
