//! The per-process address space: VMA bookkeeping plus a paged byte store.

use crate::addr::{page_ceil, Addr, PAGE_SIZE};
use crate::layout::Layout;
use crate::vma::{Perms, Vma};
use agave_trace::NameId;
use std::collections::{BTreeMap, HashMap};

const PAGE: usize = PAGE_SIZE as usize;
/// Unmapped guard gap left between consecutive `mmap` allocations.
const MMAP_GUARD: u64 = PAGE_SIZE;

/// A simulated per-process virtual address space.
///
/// Mappings are tracked as named [`Vma`]s; bytes live in lazily-allocated
/// 4 KiB pages, so sparse multi-megabyte mappings cost nothing until
/// written. Reads of never-written pages return zeros, matching anonymous
/// mmap semantics.
///
/// Accesses must fall entirely inside a single mapped VMA; violating that is
/// a simulator bug and panics (see the per-method `# Panics` sections).
#[derive(Debug, Default, Clone)]
pub struct AddressSpace {
    layout: Layout,
    /// VMAs keyed by start address.
    vmas: BTreeMap<u64, Vma>,
    pages: HashMap<u64, Box<[u8; PAGE]>>,
    next_mmap: u64,
    next_stack_top: u64,
    heap: Option<HeapState>,
}

#[derive(Debug, Clone, Copy)]
struct HeapState {
    base: u64,
    brk: u64,
    name: NameId,
}

impl AddressSpace {
    /// Creates an empty space with the default [`Layout`].
    pub fn new() -> Self {
        Self::with_layout(Layout::default())
    }

    /// Creates an empty space with a custom layout.
    pub fn with_layout(layout: Layout) -> Self {
        AddressSpace {
            layout,
            vmas: BTreeMap::new(),
            pages: HashMap::new(),
            next_mmap: layout.mmap_base,
            next_stack_top: layout.stack_top,
            heap: None,
        }
    }

    /// The layout this space was created with.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Maps `len` bytes (rounded up to pages) at the next free `mmap`
    /// address and returns the base.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn mmap(&mut self, len: u64, name: NameId, perms: Perms) -> Addr {
        assert!(len > 0, "mmap of zero length");
        let len = page_ceil(len);
        let start = Addr::new(self.next_mmap);
        self.next_mmap += len + MMAP_GUARD;
        self.insert_vma(Vma::new(start, len, name, perms));
        start
    }

    /// Maps `len` bytes (rounded up to pages) at a caller-chosen address.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0` or the range overlaps an existing VMA.
    pub fn map_fixed(&mut self, start: Addr, len: u64, name: NameId, perms: Perms) -> Addr {
        assert!(len > 0, "map_fixed of zero length");
        let len = page_ceil(len);
        self.insert_vma(Vma::new(start, len, name, perms));
        start
    }

    /// Removes the VMA starting at `start`, discarding its pages.
    ///
    /// # Panics
    ///
    /// Panics if no VMA starts at `start`.
    pub fn munmap(&mut self, start: Addr) {
        let vma = self
            .vmas
            .remove(&start.value())
            .unwrap_or_else(|| panic!("munmap: no VMA starts at {start}"));
        let first = vma.start().page_index();
        let last = (vma.end() - 1u64).page_index();
        for p in first..=last {
            self.pages.remove(&p);
        }
    }

    /// Reserves a new downward-growing thread stack and returns its VMA.
    ///
    /// Stacks are carved from just below the previous stack, separated by a
    /// guard page, mirroring pthread stack placement.
    pub fn map_stack(&mut self, name: NameId) -> Vma {
        let size = self.layout.stack_size;
        let top = self.next_stack_top;
        let start = Addr::new(top - size);
        self.next_stack_top = start.value() - MMAP_GUARD;
        let vma = Vma::new(start, size, name, Perms::RW);
        self.insert_vma(vma);
        vma
    }

    /// Initializes the brk heap at the layout's heap base.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn init_heap(&mut self, name: NameId) {
        assert!(self.heap.is_none(), "heap already initialized");
        self.heap = Some(HeapState {
            base: self.layout.heap_base,
            brk: self.layout.heap_base,
            name,
        });
    }

    /// Grows the heap by `incr` bytes (page-rounded) and returns the old
    /// break — the base of the newly valid range.
    ///
    /// # Panics
    ///
    /// Panics if [`AddressSpace::init_heap`] has not been called or
    /// `incr == 0`.
    pub fn sbrk(&mut self, incr: u64) -> Addr {
        assert!(incr > 0, "sbrk of zero");
        let heap = self.heap.as_mut().expect("heap not initialized");
        let old_brk = heap.brk;
        let new_brk = old_brk + page_ceil(incr);
        heap.brk = new_brk;
        let (base, name) = (heap.base, heap.name);
        // Extend (or create) the single heap VMA in place.
        self.vmas.insert(
            base,
            Vma::new(Addr::new(base), new_brk - base, name, Perms::RW),
        );
        Addr::new(old_brk)
    }

    /// Current program break, if the heap is initialized.
    pub fn brk(&self) -> Option<Addr> {
        self.heap.map(|h| Addr::new(h.brk))
    }

    /// The VMA containing `addr`, if any.
    pub fn find(&self, addr: Addr) -> Option<&Vma> {
        self.vmas
            .range(..=addr.value())
            .next_back()
            .map(|(_, v)| v)
            .filter(|v| v.contains(addr))
    }

    /// The region name `addr` belongs to, if mapped.
    pub fn region_name(&self, addr: Addr) -> Option<NameId> {
        self.find(addr).map(Vma::name)
    }

    /// Whether the whole `[addr, addr+len)` range lies in one VMA.
    pub fn is_mapped(&self, addr: Addr, len: u64) -> bool {
        self.find(addr).is_some_and(|v| v.contains_range(addr, len))
    }

    /// Iterates over all VMAs in address order.
    pub fn vmas(&self) -> impl Iterator<Item = &Vma> {
        self.vmas.values()
    }

    /// Number of VMAs currently mapped.
    pub fn vma_count(&self) -> usize {
        self.vmas.len()
    }

    /// Total mapped bytes.
    pub fn mapped_bytes(&self) -> u64 {
        self.vmas.values().map(Vma::len).sum()
    }

    /// Renders the VMA table in `/proc/<pid>/maps` style, resolving names
    /// through `resolve` (pass `tracer.resolve` via a closure).
    pub fn render_maps(&self, mut resolve: impl FnMut(agave_trace::NameId) -> String) -> String {
        let mut out = String::new();
        for vma in self.vmas.values() {
            out.push_str(&format!(
                "{:08x}-{:08x} {}p {}
",
                vma.start().value(),
                vma.end().value(),
                vma.perms(),
                resolve(vma.name())
            ));
        }
        out
    }

    fn insert_vma(&mut self, vma: Vma) {
        // Overlap check against neighbours on both sides.
        if let Some((_, prev)) = self.vmas.range(..=vma.start().value()).next_back() {
            assert!(
                !prev.overlaps(vma.start(), vma.len()),
                "VMA overlap: new {:?} with existing {:?}",
                vma,
                prev
            );
        }
        if let Some((_, next)) = self.vmas.range(vma.start().value()..).next() {
            assert!(
                !next.overlaps(vma.start(), vma.len()),
                "VMA overlap: new {:?} with existing {:?}",
                vma,
                next
            );
        }
        self.vmas.insert(vma.start().value(), vma);
    }

    fn check_mapped(&self, addr: Addr, len: u64, what: &str) {
        assert!(
            self.is_mapped(addr, len),
            "{what} of {len} bytes at unmapped address {addr}"
        );
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range is not fully mapped by one VMA.
    pub fn read(&self, addr: Addr, buf: &mut [u8]) {
        self.check_mapped(addr, buf.len() as u64, "read");
        let mut cursor = addr;
        let mut filled = 0usize;
        while filled < buf.len() {
            let page = cursor.page_index();
            let off = cursor.page_offset() as usize;
            let chunk = (PAGE - off).min(buf.len() - filled);
            match self.pages.get(&page) {
                Some(p) => buf[filled..filled + chunk].copy_from_slice(&p[off..off + chunk]),
                None => buf[filled..filled + chunk].fill(0),
            }
            filled += chunk;
            cursor += chunk as u64;
        }
    }

    /// Reads `len` bytes into a fresh vector.
    ///
    /// # Panics
    ///
    /// Panics if the range is not fully mapped by one VMA.
    pub fn read_vec(&self, addr: Addr, len: u64) -> Vec<u8> {
        let mut buf = vec![0u8; len as usize];
        self.read(addr, &mut buf);
        buf
    }

    /// Writes `bytes` starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range is not fully mapped by one VMA.
    pub fn write(&mut self, addr: Addr, bytes: &[u8]) {
        self.check_mapped(addr, bytes.len() as u64, "write");
        let mut cursor = addr;
        let mut written = 0usize;
        while written < bytes.len() {
            let page = cursor.page_index();
            let off = cursor.page_offset() as usize;
            let chunk = (PAGE - off).min(bytes.len() - written);
            let p = self
                .pages
                .entry(page)
                .or_insert_with(|| Box::new([0u8; PAGE]));
            p[off..off + chunk].copy_from_slice(&bytes[written..written + chunk]);
            written += chunk;
            cursor += chunk as u64;
        }
    }

    /// Fills `len` bytes at `addr` with `value`.
    ///
    /// # Panics
    ///
    /// Panics if the range is not fully mapped by one VMA.
    pub fn fill(&mut self, addr: Addr, len: u64, value: u8) {
        self.check_mapped(addr, len, "fill");
        let mut cursor = addr;
        let mut remaining = len;
        while remaining > 0 {
            let page = cursor.page_index();
            let off = cursor.page_offset() as usize;
            let chunk = ((PAGE - off) as u64).min(remaining) as usize;
            if value == 0 && !self.pages.contains_key(&page) {
                // Zero-filling an untouched page is a no-op.
            } else {
                let p = self
                    .pages
                    .entry(page)
                    .or_insert_with(|| Box::new([0u8; PAGE]));
                p[off..off + chunk].fill(value);
            }
            remaining -= chunk as u64;
            cursor += chunk as u64;
        }
    }

    /// Copies `len` bytes from `src` to `dst` within this space.
    ///
    /// The ranges may be in different VMAs but each must be fully mapped.
    ///
    /// # Panics
    ///
    /// Panics if either range is not fully mapped by one VMA.
    pub fn copy_within(&mut self, dst: Addr, src: Addr, len: u64) {
        let data = self.read_vec(src, len);
        self.write(dst, &data);
    }

    /// Reads a little-endian `u8` at `addr`.
    pub fn read_u8(&self, addr: Addr) -> u8 {
        let mut b = [0u8; 1];
        self.read(addr, &mut b);
        b[0]
    }

    /// Reads a little-endian `u16` at `addr`.
    pub fn read_u16(&self, addr: Addr) -> u16 {
        let mut b = [0u8; 2];
        self.read(addr, &mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32` at `addr`.
    pub fn read_u32(&self, addr: Addr) -> u32 {
        let mut b = [0u8; 4];
        self.read(addr, &mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64` at `addr`.
    pub fn read_u64(&self, addr: Addr) -> u64 {
        let mut b = [0u8; 8];
        self.read(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a `u8` at `addr`.
    pub fn write_u8(&mut self, addr: Addr, v: u8) {
        self.write(addr, &[v]);
    }

    /// Writes a little-endian `u16` at `addr`.
    pub fn write_u16(&mut self, addr: Addr, v: u16) {
        self.write(addr, &v.to_le_bytes());
    }

    /// Writes a little-endian `u32` at `addr`.
    pub fn write_u32(&mut self, addr: Addr, v: u32) {
        self.write(addr, &v.to_le_bytes());
    }

    /// Writes a little-endian `u64` at `addr`.
    pub fn write_u64(&mut self, addr: Addr, v: u64) {
        self.write(addr, &v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agave_trace::NameTable;

    fn space_and_names() -> (AddressSpace, NameTable) {
        (AddressSpace::new(), NameTable::new())
    }

    #[test]
    fn mmap_places_disjoint_regions() {
        let (mut s, mut n) = space_and_names();
        let a = s.mmap(100, n.intern("a"), Perms::RW);
        let b = s.mmap(PAGE_SIZE * 3, n.intern("b"), Perms::RW);
        assert!(b.value() >= a.value() + PAGE_SIZE);
        assert_eq!(s.vma_count(), 2);
        assert_eq!(s.find(a).unwrap().len(), PAGE_SIZE); // rounded up
    }

    #[test]
    fn read_write_round_trip_across_pages() {
        let (mut s, mut n) = space_and_names();
        let base = s.mmap(3 * PAGE_SIZE, n.intern("buf"), Perms::RW);
        let data: Vec<u8> = (0..u16::try_from(2 * PAGE_SIZE).unwrap())
            .map(|i| (i % 251) as u8)
            .collect();
        let addr = base + (PAGE_SIZE / 2);
        s.write(addr, &data);
        assert_eq!(s.read_vec(addr, data.len() as u64), data);
    }

    #[test]
    fn unwritten_pages_read_zero() {
        let (mut s, mut n) = space_and_names();
        let base = s.mmap(PAGE_SIZE, n.intern("z"), Perms::RW);
        assert_eq!(s.read_u64(base + 128), 0);
    }

    #[test]
    fn typed_accessors_round_trip() {
        let (mut s, mut n) = space_and_names();
        let base = s.mmap(PAGE_SIZE, n.intern("t"), Perms::RW);
        s.write_u8(base, 0xab);
        s.write_u16(base + 2, 0xbeef);
        s.write_u32(base + 4, 0xdead_beef);
        s.write_u64(base + 8, 0x0123_4567_89ab_cdef);
        assert_eq!(s.read_u8(base), 0xab);
        assert_eq!(s.read_u16(base + 2), 0xbeef);
        assert_eq!(s.read_u32(base + 4), 0xdead_beef);
        assert_eq!(s.read_u64(base + 8), 0x0123_4567_89ab_cdef);
    }

    #[test]
    fn sbrk_extends_single_heap_vma() {
        let (mut s, mut n) = space_and_names();
        s.init_heap(n.intern("heap"));
        let first = s.sbrk(100);
        let second = s.sbrk(PAGE_SIZE);
        assert_eq!(first.value(), s.layout().heap_base);
        assert_eq!(second.value(), s.layout().heap_base + PAGE_SIZE);
        assert_eq!(s.vma_count(), 1);
        let heap = s.find(first).unwrap();
        assert_eq!(heap.len(), 2 * PAGE_SIZE);
        s.write_u32(second, 7);
        assert_eq!(s.read_u32(second), 7);
    }

    #[test]
    fn stacks_grow_downward_with_guards() {
        let (mut s, mut n) = space_and_names();
        let stack_name = n.intern("stack");
        let s1 = s.map_stack(stack_name);
        let s2 = s.map_stack(stack_name);
        assert!(s2.end().value() < s1.start().value());
        assert_eq!(s1.len(), s.layout().stack_size);
    }

    #[test]
    fn munmap_discards_pages() {
        let (mut s, mut n) = space_and_names();
        let a = s.mmap(PAGE_SIZE, n.intern("tmp"), Perms::RW);
        s.write_u32(a, 42);
        s.munmap(a);
        assert!(s.find(a).is_none());
        // Remap at a fixed address over the same page and confirm zeroed.
        s.map_fixed(a, PAGE_SIZE, n.intern("tmp2"), Perms::RW);
        assert_eq!(s.read_u32(a), 0);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_map_fixed_panics() {
        let (mut s, mut n) = space_and_names();
        let name = n.intern("x");
        s.map_fixed(Addr::new(0x1000), PAGE_SIZE * 2, name, Perms::RW);
        s.map_fixed(Addr::new(0x2000), PAGE_SIZE, name, Perms::RW);
    }

    #[test]
    #[should_panic(expected = "unmapped")]
    fn unmapped_access_panics() {
        let (s, _) = space_and_names();
        let _ = s.read_u32(Addr::new(0x5000_0000));
    }

    #[test]
    #[should_panic(expected = "unmapped")]
    fn access_spilling_out_of_vma_panics() {
        let (mut s, mut n) = space_and_names();
        let a = s.mmap(PAGE_SIZE, n.intern("one"), Perms::RW);
        let mut buf = vec![0u8; PAGE_SIZE as usize + 1];
        s.read(a, &mut buf);
    }

    #[test]
    fn copy_within_moves_bytes_between_vmas() {
        let (mut s, mut n) = space_and_names();
        let a = s.mmap(PAGE_SIZE, n.intern("src"), Perms::RW);
        let b = s.mmap(PAGE_SIZE, n.intern("dst"), Perms::RW);
        s.write(a, b"hello world");
        s.copy_within(b, a, 11);
        assert_eq!(s.read_vec(b, 11), b"hello world");
    }

    #[test]
    fn fill_and_region_name() {
        let (mut s, mut n) = space_and_names();
        let name = n.intern("gralloc-buffer");
        let a = s.mmap(2 * PAGE_SIZE, name, Perms::RW);
        s.fill(a, 2 * PAGE_SIZE, 0x7f);
        assert_eq!(s.read_u8(a + PAGE_SIZE + 17), 0x7f);
        assert_eq!(s.region_name(a + 10), Some(name));
        assert_eq!(s.region_name(Addr::new(1)), None);
    }
}
