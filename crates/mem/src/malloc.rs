//! A behavioral model of the C library allocator.
//!
//! Mirrors the two glibc/bionic paths the paper's Figure 2 exposes:
//! requests below [`MMAP_THRESHOLD`] are carved from the brk-managed `heap`
//! VMA; larger requests get a dedicated `anonymous` mmap — which is why
//! 429.mcf's giant arc arrays show up under *anonymous* rather than *heap*
//! in the paper.

use crate::addr::{page_ceil, Addr};
use crate::space::AddressSpace;
use crate::vma::Perms;
use agave_trace::NameId;
use std::collections::BTreeMap;

/// Requests at or above this many bytes are served by anonymous `mmap`
/// instead of the brk heap (glibc's default `M_MMAP_THRESHOLD`).
pub const MMAP_THRESHOLD: u64 = 128 * 1024;

/// Minimum alignment/granule of heap allocations.
const GRANULE: u64 = 16;
/// How much the heap is grown per `sbrk` when it runs out.
const SBRK_CHUNK: u64 = 64 * 1024;

/// Where an [`Allocation`] was placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocationKind {
    /// Inside the brk-managed `heap` VMA.
    Heap,
    /// In a dedicated `anonymous` mmap region.
    Anonymous,
}

/// A block handed out by [`Malloc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Allocation {
    /// Base address of the usable block.
    pub addr: Addr,
    /// Rounded-up size actually reserved.
    pub size: u64,
    /// Which arena served it.
    pub kind: AllocationKind,
}

/// The C-library allocator model for one process.
///
/// # Example
///
/// ```
/// use agave_mem::{AddressSpace, Malloc, AllocationKind, MMAP_THRESHOLD};
/// use agave_trace::NameTable;
///
/// let mut names = NameTable::new();
/// let mut space = AddressSpace::new();
/// let mut malloc = Malloc::new(&mut space, names.intern("heap"), names.intern("anonymous"));
///
/// let small = malloc.alloc(&mut space, 64);
/// assert_eq!(small.kind, AllocationKind::Heap);
/// let big = malloc.alloc(&mut space, MMAP_THRESHOLD);
/// assert_eq!(big.kind, AllocationKind::Anonymous);
/// ```
#[derive(Debug)]
pub struct Malloc {
    anon_name: NameId,
    /// Bump cursor inside the most recent sbrk extent.
    top: u64,
    top_end: u64,
    /// Size-class free lists for recycled heap blocks.
    free: BTreeMap<u64, Vec<Addr>>,
    /// Statistics: total bytes served from each arena.
    heap_bytes: u64,
    anon_bytes: u64,
}

impl Malloc {
    /// Creates the allocator and initializes the space's brk heap.
    ///
    /// # Panics
    ///
    /// Panics if the space's heap is already initialized.
    pub fn new(space: &mut AddressSpace, heap_name: NameId, anon_name: NameId) -> Self {
        space.init_heap(heap_name);
        Malloc {
            anon_name,
            top: 0,
            top_end: 0,
            free: BTreeMap::new(),
            heap_bytes: 0,
            anon_bytes: 0,
        }
    }

    /// Creates an allocator for a forked process that inherited `parent`'s
    /// (already initialized) heap VMA.
    ///
    /// The child starts with empty free lists and no bump extent; its first
    /// allocation extends the inherited heap via `sbrk`, mirroring how a
    /// forked process's allocator state diverges from its parent's.
    pub fn resume_from(parent: &Malloc) -> Self {
        Malloc {
            anon_name: parent.anon_name,
            top: 0,
            top_end: 0,
            free: BTreeMap::new(),
            heap_bytes: 0,
            anon_bytes: 0,
        }
    }

    /// Allocates `size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    pub fn alloc(&mut self, space: &mut AddressSpace, size: u64) -> Allocation {
        assert!(size > 0, "malloc of zero bytes");
        if size >= MMAP_THRESHOLD {
            let rounded = page_ceil(size);
            let addr = space.mmap(rounded, self.anon_name, Perms::RW);
            self.anon_bytes += rounded;
            return Allocation {
                addr,
                size: rounded,
                kind: AllocationKind::Anonymous,
            };
        }
        let rounded = round_granule(size);
        if let Some(list) = self.free.get_mut(&rounded) {
            if let Some(addr) = list.pop() {
                self.heap_bytes += rounded;
                return Allocation {
                    addr,
                    size: rounded,
                    kind: AllocationKind::Heap,
                };
            }
        }
        if self.top + rounded > self.top_end {
            let grow = SBRK_CHUNK.max(rounded);
            let base = space.sbrk(grow);
            self.top = base.value();
            self.top_end = space.brk().expect("heap initialized").value();
        }
        let addr = Addr::new(self.top);
        self.top += rounded;
        self.heap_bytes += rounded;
        Allocation {
            addr,
            size: rounded,
            kind: AllocationKind::Heap,
        }
    }

    /// Returns a block to the allocator.
    ///
    /// Heap blocks go on a size-class free list; anonymous blocks are
    /// unmapped immediately, as glibc does.
    pub fn free(&mut self, space: &mut AddressSpace, allocation: Allocation) {
        match allocation.kind {
            AllocationKind::Heap => {
                self.free
                    .entry(allocation.size)
                    .or_default()
                    .push(allocation.addr);
            }
            AllocationKind::Anonymous => space.munmap(allocation.addr),
        }
    }

    /// Cumulative bytes served from the brk heap.
    pub fn heap_bytes_served(&self) -> u64 {
        self.heap_bytes
    }

    /// Cumulative bytes served from anonymous mmaps.
    pub fn anon_bytes_served(&self) -> u64 {
        self.anon_bytes
    }
}

fn round_granule(size: u64) -> u64 {
    size.div_ceil(GRANULE) * GRANULE
}

#[cfg(test)]
mod tests {
    use super::*;
    use agave_trace::NameTable;

    fn setup() -> (AddressSpace, Malloc, NameId, NameId) {
        let mut names = NameTable::new();
        let heap = names.intern("heap");
        let anon = names.intern("anonymous");
        let mut space = AddressSpace::new();
        let malloc = Malloc::new(&mut space, heap, anon);
        (space, malloc, heap, anon)
    }

    #[test]
    fn small_allocations_come_from_heap() {
        let (mut space, mut malloc, heap, _) = setup();
        let a = malloc.alloc(&mut space, 24);
        let b = malloc.alloc(&mut space, 24);
        assert_eq!(a.kind, AllocationKind::Heap);
        assert_ne!(a.addr, b.addr);
        assert_eq!(space.region_name(a.addr), Some(heap));
        assert_eq!(a.size, 32); // rounded to granule
    }

    #[test]
    fn large_allocations_are_anonymous_mmaps() {
        let (mut space, mut malloc, _, anon) = setup();
        let big = malloc.alloc(&mut space, MMAP_THRESHOLD + 1);
        assert_eq!(big.kind, AllocationKind::Anonymous);
        assert_eq!(space.region_name(big.addr), Some(anon));
        // Threshold is inclusive.
        let edge = malloc.alloc(&mut space, MMAP_THRESHOLD);
        assert_eq!(edge.kind, AllocationKind::Anonymous);
        let below = malloc.alloc(&mut space, MMAP_THRESHOLD - 1);
        assert_eq!(below.kind, AllocationKind::Heap);
    }

    #[test]
    fn freed_heap_blocks_are_recycled() {
        let (mut space, mut malloc, _, _) = setup();
        let a = malloc.alloc(&mut space, 100);
        malloc.free(&mut space, a);
        let b = malloc.alloc(&mut space, 100);
        assert_eq!(a.addr, b.addr);
    }

    #[test]
    fn freed_anonymous_blocks_are_unmapped() {
        let (mut space, mut malloc, _, _) = setup();
        let big = malloc.alloc(&mut space, MMAP_THRESHOLD);
        malloc.free(&mut space, big);
        assert!(space.find(big.addr).is_none());
    }

    #[test]
    fn allocations_do_not_overlap() {
        let (mut space, mut malloc, _, _) = setup();
        let mut blocks = Vec::new();
        for i in 1..200u64 {
            blocks.push(malloc.alloc(&mut space, i * 7 % 900 + 1));
        }
        blocks.sort_by_key(|a| a.addr);
        for pair in blocks.windows(2) {
            assert!(pair[0].addr.value() + pair[0].size <= pair[1].addr.value());
        }
    }

    #[test]
    fn byte_accounting() {
        let (mut space, mut malloc, _, _) = setup();
        malloc.alloc(&mut space, 16);
        malloc.alloc(&mut space, MMAP_THRESHOLD);
        assert_eq!(malloc.heap_bytes_served(), 16);
        assert_eq!(malloc.anon_bytes_served(), page_ceil(MMAP_THRESHOLD));
    }

    #[test]
    #[should_panic(expected = "zero")]
    fn zero_alloc_panics() {
        let (mut space, mut malloc, _, _) = setup();
        malloc.alloc(&mut space, 0);
    }
}
