//! Virtual addresses and page arithmetic.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Size of a simulated page, matching the ARM Linux kernel the paper ran.
pub const PAGE_SIZE: u64 = 4096;

/// A simulated 32-bit-style virtual address (stored as `u64` for headroom).
///
/// # Example
///
/// ```
/// use agave_mem::Addr;
///
/// let a = Addr::new(0x4000_0000);
/// assert_eq!((a + 16) - a, 16);
/// assert_eq!(a.page_index(), 0x4000_0000 / 4096);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// The null address.
    pub const NULL: Addr = Addr(0);

    /// Creates an address from its numeric value.
    pub const fn new(value: u64) -> Self {
        Addr(value)
    }

    /// Numeric value.
    pub const fn value(self) -> u64 {
        self.0
    }

    /// Index of the page containing this address.
    pub const fn page_index(self) -> u64 {
        self.0 / PAGE_SIZE
    }

    /// Byte offset within the containing page.
    pub const fn page_offset(self) -> u64 {
        self.0 % PAGE_SIZE
    }

    /// True if this is the null address.
    pub const fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Checked addition, `None` on overflow.
    pub fn checked_add(self, rhs: u64) -> Option<Addr> {
        self.0.checked_add(rhs).map(Addr)
    }
}

impl Add<u64> for Addr {
    type Output = Addr;
    fn add(self, rhs: u64) -> Addr {
        Addr(self.0 + rhs)
    }
}

impl AddAssign<u64> for Addr {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Addr> for Addr {
    type Output = u64;
    fn sub(self, rhs: Addr) -> u64 {
        self.0 - rhs.0
    }
}

impl Sub<u64> for Addr {
    type Output = Addr;
    fn sub(self, rhs: u64) -> Addr {
        Addr(self.0 - rhs)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:08x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// Rounds `value` down to a page boundary.
pub const fn page_floor(value: u64) -> u64 {
    value & !(PAGE_SIZE - 1)
}

/// Rounds `value` up to a page boundary.
pub const fn page_ceil(value: u64) -> u64 {
    (value + PAGE_SIZE - 1) & !(PAGE_SIZE - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Addr::new(100);
        assert_eq!((a + 28).value(), 128);
        assert_eq!((a + 28) - a, 28);
        assert_eq!((a - 50).value(), 50);
    }

    #[test]
    fn page_math() {
        assert_eq!(page_floor(4095), 0);
        assert_eq!(page_floor(4096), 4096);
        assert_eq!(page_ceil(1), 4096);
        assert_eq!(page_ceil(4096), 4096);
        assert_eq!(page_ceil(0), 0);
        let a = Addr::new(PAGE_SIZE + 5);
        assert_eq!(a.page_index(), 1);
        assert_eq!(a.page_offset(), 5);
    }

    #[test]
    fn null_checks() {
        assert!(Addr::NULL.is_null());
        assert!(!Addr::new(1).is_null());
        assert_eq!(Addr::default(), Addr::NULL);
    }

    #[test]
    fn display_formats_hex() {
        assert_eq!(Addr::new(0x40001000).to_string(), "0x40001000");
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(Addr::new(u64::MAX).checked_add(1).is_none());
        assert_eq!(Addr::new(1).checked_add(1), Some(Addr::new(2)));
    }
}
