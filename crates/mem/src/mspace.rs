//! A dlmalloc *mspace* model — Skia's private arena on Gingerbread.
//!
//! Skia allocates pixel scratch buffers and keeps runtime-generated blitter
//! code in a dedicated dlmalloc mspace; in the paper's Figure 1 this
//! `mspace` region is the single largest *instruction* region across the
//! suite. The region is therefore mapped `rwx`.

use crate::addr::Addr;
use crate::space::AddressSpace;
use crate::vma::Perms;
use agave_trace::NameId;

/// Minimum alignment of mspace allocations.
const ALIGN: u64 = 16;

/// A bump-allocated arena living in a single named VMA.
///
/// # Example
///
/// ```
/// use agave_mem::{AddressSpace, Mspace};
/// use agave_trace::NameTable;
///
/// let mut names = NameTable::new();
/// let mut space = AddressSpace::new();
/// let mut arena = Mspace::create(&mut space, names.intern("mspace"), 1 << 20);
/// let buf = arena.alloc(4096);
/// assert!(arena.used() >= 4096);
/// space.write_u32(buf, 1); // the arena is ordinary simulated memory
/// # let _ = buf;
/// ```
#[derive(Debug)]
pub struct Mspace {
    base: Addr,
    capacity: u64,
    used: u64,
    name: NameId,
}

impl Mspace {
    /// Maps a `capacity`-byte `rwx` region named `name` and wraps it.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn create(space: &mut AddressSpace, name: NameId, capacity: u64) -> Self {
        let base = space.mmap(capacity, name, Perms::RWX);
        Mspace {
            base,
            capacity,
            used: 0,
            name,
        }
    }

    /// Allocates `size` bytes (16-aligned) from the arena.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0` or the arena is exhausted.
    pub fn alloc(&mut self, size: u64) -> Addr {
        assert!(size > 0, "mspace alloc of zero bytes");
        let rounded = size.div_ceil(ALIGN) * ALIGN;
        assert!(
            self.used + rounded <= self.capacity,
            "mspace exhausted: {} + {} > {}",
            self.used,
            rounded,
            self.capacity
        );
        let addr = self.base + self.used;
        self.used += rounded;
        addr
    }

    /// Releases everything allocated so far (Skia recycles per frame).
    pub fn reset(&mut self) {
        self.used = 0;
    }

    /// Base address of the arena's VMA.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Total arena capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes still available.
    pub fn remaining(&self) -> u64 {
        self.capacity - self.used
    }

    /// The region name allocations are charged against.
    pub fn name(&self) -> NameId {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agave_trace::NameTable;

    fn arena(cap: u64) -> (AddressSpace, Mspace) {
        let mut names = NameTable::new();
        let mut space = AddressSpace::new();
        let m = Mspace::create(&mut space, names.intern("mspace"), cap);
        (space, m)
    }

    #[test]
    fn allocations_are_disjoint_and_aligned() {
        let (_, mut m) = arena(1 << 16);
        let a = m.alloc(10);
        let b = m.alloc(1);
        assert_eq!(a.value() % ALIGN, 0);
        assert_eq!(b.value() % ALIGN, 0);
        assert!(b.value() >= a.value() + 10);
    }

    #[test]
    fn reset_recycles_space() {
        let (_, mut m) = arena(64);
        let a = m.alloc(64);
        m.reset();
        let b = m.alloc(64);
        assert_eq!(a, b);
        assert_eq!(m.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhaustion_panics() {
        let (_, mut m) = arena(32);
        m.alloc(48);
    }

    #[test]
    fn arena_memory_is_usable() {
        let (mut space, mut m) = arena(4096);
        let p = m.alloc(128);
        space.write_u64(p, 0x1234_5678_9abc_def0);
        assert_eq!(space.read_u64(p), 0x1234_5678_9abc_def0);
    }
}
