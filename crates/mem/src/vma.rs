//! Virtual memory areas: named, permissioned address ranges.

use crate::addr::Addr;
use agave_trace::NameId;
use std::fmt;

/// Access permissions of a [`Vma`], mirroring the `rwx` bits of
/// `/proc/<pid>/maps`.
///
/// # Example
///
/// ```
/// use agave_mem::Perms;
///
/// assert!(Perms::RX.can_exec());
/// assert!(!Perms::RW.can_exec());
/// assert!(Perms::RW.can_write());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Perms {
    read: bool,
    write: bool,
    exec: bool,
}

impl Perms {
    /// Read-only.
    pub const R: Perms = Perms {
        read: true,
        write: false,
        exec: false,
    };
    /// Read + write (data regions).
    pub const RW: Perms = Perms {
        read: true,
        write: true,
        exec: false,
    };
    /// Read + execute (text regions).
    pub const RX: Perms = Perms {
        read: true,
        write: false,
        exec: true,
    };
    /// Read + write + execute (JIT code caches, mspace blitters).
    pub const RWX: Perms = Perms {
        read: true,
        write: true,
        exec: true,
    };

    /// Whether loads are permitted.
    pub fn can_read(self) -> bool {
        self.read
    }

    /// Whether stores are permitted.
    pub fn can_write(self) -> bool {
        self.write
    }

    /// Whether instruction fetches are permitted.
    pub fn can_exec(self) -> bool {
        self.exec
    }
}

impl fmt::Display for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.read { 'r' } else { '-' },
            if self.write { 'w' } else { '-' },
            if self.exec { 'x' } else { '-' }
        )
    }
}

/// A contiguous named mapping in an [`crate::AddressSpace`].
///
/// The name identifies the backing object in the paper's taxonomy
/// (`libdvm.so`, `dalvik-heap`, `anonymous`, …) and is what references to
/// this range are charged against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vma {
    start: Addr,
    len: u64,
    name: NameId,
    perms: Perms,
}

impl Vma {
    /// Creates a VMA. `len` must be nonzero and page-aligned by callers that
    /// care about alignment; this constructor only rejects zero length.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn new(start: Addr, len: u64, name: NameId, perms: Perms) -> Self {
        assert!(len > 0, "zero-length VMA");
        Vma {
            start,
            len,
            name,
            perms,
        }
    }

    /// First address of the range.
    pub fn start(&self) -> Addr {
        self.start
    }

    /// Length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// VMAs are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// One past the last address.
    pub fn end(&self) -> Addr {
        self.start + self.len
    }

    /// Interned name of the backing object.
    pub fn name(&self) -> NameId {
        self.name
    }

    /// Access permissions.
    pub fn perms(&self) -> Perms {
        self.perms
    }

    /// Whether `addr` falls inside this VMA.
    pub fn contains(&self, addr: Addr) -> bool {
        addr >= self.start && addr < self.end()
    }

    /// Whether the whole `[addr, addr+len)` range falls inside this VMA.
    pub fn contains_range(&self, addr: Addr, len: u64) -> bool {
        addr >= self.start && addr.value() + len <= self.end().value()
    }

    /// Whether this VMA overlaps `[start, start+len)`.
    pub fn overlaps(&self, start: Addr, len: u64) -> bool {
        start.value() < self.end().value() && self.start.value() < start.value() + len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agave_trace::NameTable;

    fn vma(start: u64, len: u64) -> Vma {
        let mut t = NameTable::new();
        Vma::new(Addr::new(start), len, t.intern("x"), Perms::RW)
    }

    #[test]
    fn containment() {
        let v = vma(100, 50);
        assert!(v.contains(Addr::new(100)));
        assert!(v.contains(Addr::new(149)));
        assert!(!v.contains(Addr::new(150)));
        assert!(!v.contains(Addr::new(99)));
    }

    #[test]
    fn range_containment() {
        let v = vma(100, 50);
        assert!(v.contains_range(Addr::new(100), 50));
        assert!(v.contains_range(Addr::new(120), 30));
        assert!(!v.contains_range(Addr::new(120), 31));
    }

    #[test]
    fn overlap() {
        let v = vma(100, 50);
        assert!(v.overlaps(Addr::new(149), 1));
        assert!(v.overlaps(Addr::new(50), 51));
        assert!(!v.overlaps(Addr::new(150), 10));
        assert!(!v.overlaps(Addr::new(50), 50));
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn zero_length_rejected() {
        let _ = vma(0, 0);
    }

    #[test]
    fn perms_display() {
        assert_eq!(Perms::RX.to_string(), "r-x");
        assert_eq!(Perms::RW.to_string(), "rw-");
        assert_eq!(Perms::RWX.to_string(), "rwx");
        assert_eq!(Perms::R.to_string(), "r--");
    }
}
