//! Simulated virtual memory for the Agave Android-stack simulator.
//!
//! Each simulated process owns an [`AddressSpace`]: an ordered set of named
//! [`Vma`]s (virtual memory areas) backed by a lazily-populated paged byte
//! store. Region *names* mirror the `/proc/<pid>/maps` backing objects the
//! paper classifies references by (`libdvm.so`, `heap`, `anonymous`,
//! `gralloc-buffer`, `fb0`, …).
//!
//! Two allocator models sit on top:
//!
//! * [`Malloc`] — the C library allocator: small allocations extend the
//!   `heap` VMA via `brk`, allocations above [`MMAP_THRESHOLD`] get their own
//!   `anonymous` mmap, exactly the behaviour the paper points out for
//!   429.mcf-style workloads.
//! * [`Mspace`] — a dlmalloc *mspace*, the private arena Skia uses for pixel
//!   scratch buffers (and where Gingerbread keeps generated blitter code) —
//!   the dominant instruction region of the paper's Figure 1.
//!
//! # Example
//!
//! ```
//! use agave_mem::{AddressSpace, Perms, PAGE_SIZE};
//! use agave_trace::NameTable;
//!
//! let mut names = NameTable::new();
//! let heap = names.intern("heap");
//! let mut space = AddressSpace::new();
//! let addr = space.mmap(4 * PAGE_SIZE, heap, Perms::RW);
//! space.write_u32(addr, 0xdead_beef);
//! assert_eq!(space.read_u32(addr), 0xdead_beef);
//! assert_eq!(space.region_name(addr), Some(heap));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod layout;
mod malloc;
mod mspace;
mod space;
mod vma;

pub use addr::{page_ceil, page_floor, Addr, PAGE_SIZE};
pub use layout::Layout;
pub use malloc::{Allocation, AllocationKind, Malloc, MMAP_THRESHOLD};
pub use mspace::Mspace;
pub use space::AddressSpace;
pub use vma::{Perms, Vma};
