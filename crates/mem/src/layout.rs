//! Standard process address-space layout, modeled on 32-bit ARM Linux.

/// Base addresses used when constructing a fresh [`crate::AddressSpace`].
///
/// The values follow the classic 3G/1G split of the ARM Linux kernel the
/// paper ran (2.6.35): program text low, brk heap above it, `mmap` area in
/// the middle of the address space, stacks below the kernel boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// Where the main executable is mapped.
    pub text_base: u64,
    /// Start of the brk-managed `heap` VMA.
    pub heap_base: u64,
    /// First address handed out by `mmap`.
    pub mmap_base: u64,
    /// Top of the first (main) thread stack; further stacks grow downward
    /// from just below the previous one.
    pub stack_top: u64,
    /// Default per-thread stack reservation in bytes.
    pub stack_size: u64,
}

impl Layout {
    /// The default ARM-Linux-like layout.
    pub const fn arm_linux() -> Self {
        Layout {
            text_base: 0x0000_8000,
            heap_base: 0x0010_0000,
            mmap_base: 0x4000_0000,
            stack_top: 0xbf00_0000,
            stack_size: 1024 * 1024,
        }
    }
}

impl Default for Layout {
    fn default() -> Self {
        Self::arm_linux()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_arm_linux() {
        let l = Layout::default();
        assert_eq!(l, Layout::arm_linux());
        assert!(l.text_base < l.heap_base);
        assert!(l.heap_base < l.mmap_base);
        assert!(l.mmap_base < l.stack_top);
    }
}
