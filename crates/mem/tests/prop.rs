//! Property-based tests for the simulated memory substrate.

use agave_mem::{AddressSpace, Addr, Malloc, Mspace, Perms, PAGE_SIZE};
use agave_trace::NameTable;
use proptest::prelude::*;

proptest! {
    /// Anything written can be read back, regardless of offset/length.
    #[test]
    fn write_then_read_round_trips(
        offset in 0u64..(PAGE_SIZE * 3),
        data in proptest::collection::vec(any::<u8>(), 1..2048),
    ) {
        let mut names = NameTable::new();
        let mut space = AddressSpace::new();
        let base = space.mmap(PAGE_SIZE * 4, names.intern("buf"), Perms::RW);
        let addr = base + offset;
        space.write(addr, &data);
        prop_assert_eq!(space.read_vec(addr, data.len() as u64), data);
    }

    /// Two disjoint writes never clobber each other.
    #[test]
    fn disjoint_writes_do_not_interfere(
        a_off in 0u64..1024,
        b_off in 2048u64..4000,
        a_byte: u8,
        b_byte: u8,
    ) {
        let mut names = NameTable::new();
        let mut space = AddressSpace::new();
        let base = space.mmap(PAGE_SIZE, names.intern("buf"), Perms::RW);
        space.write_u8(base + a_off, a_byte);
        space.write_u8(base + b_off, b_byte);
        prop_assert_eq!(space.read_u8(base + a_off), a_byte);
        prop_assert_eq!(space.read_u8(base + b_off), b_byte);
    }

    /// mmap never produces overlapping VMAs, whatever the size sequence.
    #[test]
    fn mmap_regions_never_overlap(sizes in proptest::collection::vec(1u64..200_000, 1..40)) {
        let mut names = NameTable::new();
        let name = names.intern("r");
        let mut space = AddressSpace::new();
        for &s in &sizes {
            space.mmap(s, name, Perms::RW);
        }
        let vmas: Vec<_> = space.vmas().collect();
        for pair in vmas.windows(2) {
            prop_assert!(pair[0].end().value() <= pair[1].start().value());
        }
    }

    /// Malloc never hands out overlapping live blocks, across a random
    /// interleaving of allocs and frees.
    #[test]
    fn malloc_live_blocks_disjoint(ops in proptest::collection::vec((1u64..200_000, any::<bool>()), 1..60)) {
        let mut names = NameTable::new();
        let mut space = AddressSpace::new();
        let mut malloc = Malloc::new(
            &mut space,
            names.intern("heap"),
            names.intern("anonymous"),
        );
        let mut live: Vec<agave_mem::Allocation> = Vec::new();
        for (size, do_free) in ops {
            if do_free && !live.is_empty() {
                let a = live.swap_remove(size as usize % live.len());
                malloc.free(&mut space, a);
            } else {
                live.push(malloc.alloc(&mut space, size));
            }
            let mut sorted = live.clone();
            sorted.sort_by_key(|a| a.addr);
            for pair in sorted.windows(2) {
                prop_assert!(pair[0].addr.value() + pair[0].size <= pair[1].addr.value());
            }
        }
    }

    /// The mspace bump allocator stays inside its VMA.
    #[test]
    fn mspace_stays_in_bounds(sizes in proptest::collection::vec(1u64..1000, 1..50)) {
        let total: u64 = sizes.iter().map(|s| s.div_ceil(16) * 16).sum();
        let mut names = NameTable::new();
        let mut space = AddressSpace::new();
        let mut arena = Mspace::create(&mut space, names.intern("mspace"), total.max(16));
        let end = arena.base() + arena.capacity();
        for s in sizes {
            let p = arena.alloc(s);
            prop_assert!(p >= arena.base());
            prop_assert!(p.value() + s <= end.value());
        }
    }

    /// fill writes exactly the requested range.
    #[test]
    fn fill_is_exact(start in 1u64..5000, len in 1u64..4000, value in 1u8..255) {
        let mut names = NameTable::new();
        let mut space = AddressSpace::new();
        let base = space.mmap(3 * PAGE_SIZE, names.intern("b"), Perms::RW);
        let addr = base + start;
        space.fill(addr, len, value);
        prop_assert_eq!(space.read_u8(addr), value);
        prop_assert_eq!(space.read_u8(addr + (len - 1)), value);
        prop_assert_eq!(space.read_u8(addr - 1u64), 0);
        if start + len < 3 * PAGE_SIZE {
            prop_assert_eq!(space.read_u8(addr + len), 0);
        }
    }
}

#[test]
fn addr_ordering_is_numeric() {
    assert!(Addr::new(1) < Addr::new(2));
    assert!(Addr::new(0x4000_0000) > Addr::new(0x3fff_ffff));
}
