//! Randomized tests for the simulated memory substrate, driven by the
//! in-tree [`XorShift64`] generator with fixed seeds.

use agave_mem::{Addr, AddressSpace, Malloc, Mspace, Perms, PAGE_SIZE};
use agave_trace::{NameTable, XorShift64};

const CASES: u64 = 48;

/// Anything written can be read back, regardless of offset/length.
#[test]
fn write_then_read_round_trips() {
    let mut rng = XorShift64::new(0x0e11);
    for _ in 0..CASES {
        let offset = rng.below(PAGE_SIZE * 3);
        let len = rng.range(1, 2048) as usize;
        let data = rng.bytes(len);
        let mut names = NameTable::new();
        let mut space = AddressSpace::new();
        let base = space.mmap(PAGE_SIZE * 4, names.intern("buf"), Perms::RW);
        let addr = base + offset;
        space.write(addr, &data);
        assert_eq!(space.read_vec(addr, data.len() as u64), data);
    }
}

/// Two disjoint writes never clobber each other.
#[test]
fn disjoint_writes_do_not_interfere() {
    let mut rng = XorShift64::new(0xd15);
    for _ in 0..CASES {
        let a_off = rng.below(1024);
        let b_off = rng.range(2048, 4000);
        let a_byte = rng.byte();
        let b_byte = rng.byte();
        let mut names = NameTable::new();
        let mut space = AddressSpace::new();
        let base = space.mmap(PAGE_SIZE, names.intern("buf"), Perms::RW);
        space.write_u8(base + a_off, a_byte);
        space.write_u8(base + b_off, b_byte);
        assert_eq!(space.read_u8(base + a_off), a_byte);
        assert_eq!(space.read_u8(base + b_off), b_byte);
    }
}

/// mmap never produces overlapping VMAs, whatever the size sequence.
#[test]
fn mmap_regions_never_overlap() {
    let mut rng = XorShift64::new(0x3a9);
    for _ in 0..CASES {
        let mut names = NameTable::new();
        let name = names.intern("r");
        let mut space = AddressSpace::new();
        for _ in 0..rng.range(1, 40) {
            space.mmap(rng.range(1, 200_000), name, Perms::RW);
        }
        let vmas: Vec<_> = space.vmas().collect();
        for pair in vmas.windows(2) {
            assert!(pair[0].end().value() <= pair[1].start().value());
        }
    }
}

/// Malloc never hands out overlapping live blocks, across a random
/// interleaving of allocs and frees.
#[test]
fn malloc_live_blocks_disjoint() {
    let mut rng = XorShift64::new(0xa110c);
    for _ in 0..CASES {
        let mut names = NameTable::new();
        let mut space = AddressSpace::new();
        let mut malloc = Malloc::new(&mut space, names.intern("heap"), names.intern("anonymous"));
        let mut live: Vec<agave_mem::Allocation> = Vec::new();
        for _ in 0..rng.range(1, 60) {
            let size = rng.range(1, 200_000);
            if rng.chance() && !live.is_empty() {
                let a = live.swap_remove(size as usize % live.len());
                malloc.free(&mut space, a);
            } else {
                live.push(malloc.alloc(&mut space, size));
            }
            let mut sorted = live.clone();
            sorted.sort_by_key(|a| a.addr);
            for pair in sorted.windows(2) {
                assert!(pair[0].addr.value() + pair[0].size <= pair[1].addr.value());
            }
        }
    }
}

/// The mspace bump allocator stays inside its VMA.
#[test]
fn mspace_stays_in_bounds() {
    let mut rng = XorShift64::new(0x5bace);
    for _ in 0..CASES {
        let sizes: Vec<u64> = (0..rng.range(1, 50)).map(|_| rng.range(1, 1000)).collect();
        let total: u64 = sizes.iter().map(|s| s.div_ceil(16) * 16).sum();
        let mut names = NameTable::new();
        let mut space = AddressSpace::new();
        let mut arena = Mspace::create(&mut space, names.intern("mspace"), total.max(16));
        let end = arena.base() + arena.capacity();
        for s in sizes {
            let p = arena.alloc(s);
            assert!(p >= arena.base());
            assert!(p.value() + s <= end.value());
        }
    }
}

/// fill writes exactly the requested range.
#[test]
fn fill_is_exact() {
    let mut rng = XorShift64::new(0xf111);
    for _ in 0..CASES {
        let start = rng.range(1, 5000);
        let len = rng.range(1, 4000);
        let value = rng.range(1, 255) as u8;
        let mut names = NameTable::new();
        let mut space = AddressSpace::new();
        let base = space.mmap(3 * PAGE_SIZE, names.intern("b"), Perms::RW);
        let addr = base + start;
        space.fill(addr, len, value);
        assert_eq!(space.read_u8(addr), value);
        assert_eq!(space.read_u8(addr + (len - 1)), value);
        assert_eq!(space.read_u8(addr - 1u64), 0);
        if start + len < 3 * PAGE_SIZE {
            assert_eq!(space.read_u8(addr + len), 0);
        }
    }
}

#[test]
fn addr_ordering_is_numeric() {
    assert!(Addr::new(1) < Addr::new(2));
    assert!(Addr::new(0x4000_0000) > Addr::new(0x3fff_ffff));
}
