//! Cross-crate integration: run harness, summaries, JSON, rendering.

use agave_core::{
    all_workloads, run_workload, AppId, Experiments, RunSummary, SuiteConfig, SuiteResults,
    Workload,
};

fn quick() -> SuiteConfig {
    SuiteConfig::quick()
}

#[test]
fn every_workload_runs_without_panicking() {
    // The full quick suite — every app boots its own world.
    for workload in all_workloads() {
        let summary = run_workload(workload, &quick());
        assert_eq!(summary.benchmark, workload.label());
        assert!(summary.total_instr > 0, "{workload}: no instructions");
        assert!(summary.total_data > 0, "{workload}: no data refs");
    }
}

#[test]
fn runs_are_deterministic() {
    let a = run_workload(Workload::Agave(AppId::OsmandNavView), &quick());
    let b = run_workload(Workload::Agave(AppId::OsmandNavView), &quick());
    assert_eq!(a, b, "same config must give identical reference counts");
}

#[test]
fn background_variants_hide_the_ui() {
    let fg = run_workload(Workload::Agave(AppId::MusicMp3View), &quick());
    let bkg = run_workload(Workload::Agave(AppId::MusicMp3ViewBkg), &quick());
    // The foreground app draws; the background one doesn't touch Skia's
    // mspace from the benchmark process nearly as much.
    let fg_mspace =
        fg.instr_by_region.get("mspace").copied().unwrap_or(0) as f64 / fg.total_instr as f64;
    let bkg_app = bkg.instr_process_share("benchmark");
    assert!(bkg_app < 0.05, "background app too busy: {bkg_app:.3}");
    assert!(fg_mspace > 0.0);
    // Both keep playing music through mediaserver.
    assert!(bkg.instr_process_share("mediaserver") > 0.2);
    // The background variant spawns the app_process helper.
    assert!(bkg.spawned_processes > fg.spawned_processes);
}

#[test]
fn summaries_serialize_and_merge() {
    let a = run_workload(Workload::Agave(AppId::CountdownMain), &quick());
    let json = a.to_json();
    assert!(json.starts_with(r#"{"benchmark":"countdown.main""#));
    for field in [
        "instr_by_region",
        "data_by_region",
        "refs_by_thread",
        "total_instr",
        "spawned_threads",
    ] {
        assert!(json.contains(&format!(r#""{field}":"#)), "missing {field}");
    }

    let b = run_workload(Workload::Spec(agave_core::SpecProgram::Specrand), &quick());
    let mut merged = RunSummary::empty("merged");
    merged.merge(&a);
    merged.merge(&b);
    assert_eq!(merged.total_instr, a.total_instr + b.total_instr);
}

#[test]
fn experiments_render_everywhere() {
    // A two-workload mini-suite keeps this test fast while covering the
    // full rendering path.
    let results = SuiteResults {
        agave: vec![run_workload(
            Workload::Agave(AppId::CountdownMain),
            &quick(),
        )],
        spec: vec![run_workload(
            Workload::Spec(agave_core::SpecProgram::Specrand),
            &quick(),
        )],
    };
    let ex = Experiments::new(results);
    for text in [
        ex.figure1().render(),
        ex.figure2().render(),
        ex.figure3().render(),
        ex.figure4().render(),
        ex.table1().render(),
    ] {
        assert!(text.contains('%') || text.contains("references") || !text.is_empty());
    }
    let csv = ex.figure1().to_csv();
    assert!(csv.starts_with("benchmark,"));
    assert!(csv.contains("countdown.main"));
    let md = agave_core::experiments_markdown(&ex, "integration test");
    assert!(md.contains("Figure 4"));
}

#[test]
fn reference_config_scales_up_from_quick() {
    let quick = run_workload(Workload::Agave(AppId::CountdownMain), &SuiteConfig::quick());
    let mut reference_cfg = SuiteConfig::quick();
    reference_cfg.app.duration_ms *= 3;
    let longer = run_workload(Workload::Agave(AppId::CountdownMain), &reference_cfg);
    assert!(
        longer.total_instr > quick.total_instr * 2,
        "3× duration should give ≳2× references ({} vs {})",
        longer.total_instr,
        quick.total_instr
    );
}

#[test]
fn artifacts_are_written_to_disk() {
    let results = SuiteResults {
        agave: vec![run_workload(
            Workload::Agave(AppId::CountdownMain),
            &quick(),
        )],
        spec: vec![],
    };
    let ex = Experiments::new(results);
    let dir = std::env::temp_dir().join("agave-artifacts-test");
    let _ = std::fs::remove_dir_all(&dir);
    agave_core::write_artifacts(&ex, &dir).expect("artifacts written");
    for file in [
        "fig1.csv",
        "fig2.csv",
        "fig3.csv",
        "fig4.csv",
        "results.json",
        "table1.txt",
    ] {
        let path = dir.join(file);
        let len = std::fs::metadata(&path).expect("file exists").len();
        assert!(len > 0, "{file} is empty");
    }
    let fig1 = std::fs::read_to_string(dir.join("fig1.csv")).unwrap();
    assert!(fig1.contains("countdown.main"));
    let _ = std::fs::remove_dir_all(&dir);
}
