//! Integration tests for the benchmark registry: history durability,
//! schema-version enforcement, and the regression gate's behavior on
//! synthetic histories (planted slowdowns must fail, noise must not).

use agave_registry::{
    BenchRecord, CheckStatus, Direction, History, HostFingerprint, MetricStat, NoisePolicy, Tier,
    REGISTRY_SCHEMA_VERSION,
};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// A fully specified record for a fixed fake host, so tests are
/// independent of the machine they run on.
fn record(case: &str, value: f64, mad: f64, time: u64) -> BenchRecord {
    BenchRecord {
        schema_version: REGISTRY_SCHEMA_VERSION,
        case: case.into(),
        tier: "quick".into(),
        unix_time: time,
        commit: "cafef00dcafe".into(),
        host: HostFingerprint {
            cpus: 8,
            os: "linux".into(),
            arch: "x86_64".into(),
            profile: "release".into(),
        },
        params: BTreeMap::from([
            ("workload".into(), "gallery.mp4.view".into()),
            ("sizing".into(), "quick".into()),
        ]),
        metrics: vec![MetricStat {
            name: "decode_mb_per_sec".into(),
            unit: "MB/s".into(),
            better: Direction::HigherIsBetter,
            median: value,
            mad,
            trials: 3,
        }],
    }
}

fn temp_history(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "agave-bench-registry-{tag}-{}.jsonl",
        std::process::id()
    ))
}

#[test]
fn history_append_and_parse_round_trip() {
    let path = temp_history("roundtrip");
    std::fs::remove_file(&path).ok();

    // A missing file is an empty history, not an error (first run).
    let empty = History::load(&path).expect("missing file loads as empty");
    assert!(empty.records.is_empty());
    assert!(empty.outdated.is_empty());

    let first = record("replay_codec", 140.0, 2.0, 100);
    let second = record("replay_codec", 142.5, 1.5, 200);
    History::append(&path, &first).expect("append");
    History::append(&path, &second).expect("append");

    let loaded = History::load(&path).expect("load");
    assert_eq!(loaded.records, vec![first, second]);
    assert_eq!(loaded.groups().len(), 1, "same case+params+host = 1 group");

    // A stamped record (real host, real commit) round-trips too.
    let stamped = BenchRecord::stamped(
        "hierarchy_walk",
        Tier::Quick,
        BTreeMap::from([("preset".into(), "cortex-a9".into())]),
        vec![MetricStat {
            name: "refs_per_sec".into(),
            unit: "refs/s".into(),
            better: Direction::HigherIsBetter,
            median: 4.0e6,
            mad: 1.0e5,
            trials: 3,
        }],
    );
    History::append(&path, &stamped).expect("append stamped");
    let reloaded = History::load(&path).expect("reload");
    assert_eq!(reloaded.records.len(), 3);
    assert_eq!(reloaded.records[2], stamped);
    std::fs::remove_file(&path).ok();
}

#[test]
fn mixed_schema_versions_are_enforced() {
    let path = temp_history("schema");

    // Older-version lines are set aside — counted, never baselined.
    let mut old = record("replay_codec", 100.0, 1.0, 50);
    old.schema_version = 0;
    let current = record("replay_codec", 140.0, 1.0, 100);
    std::fs::write(&path, format!("{}\n{}\n", old.to_json(), current.to_json())).expect("write");
    let loaded = History::load(&path).expect("mixed history loads");
    assert_eq!(loaded.records.len(), 1);
    assert_eq!(loaded.outdated, vec![(1, 0)]);
    let report = loaded.check(&NoisePolicy::default());
    assert!(!report.failed(), "one current record has no baseline");
    assert!(
        report.render().contains("older-schema"),
        "set-aside records must be surfaced:\n{}",
        report.render()
    );

    // Newer-version lines are a hard error: never gate with a binary
    // older than the data.
    let mut newer = record("replay_codec", 100.0, 1.0, 150);
    newer.schema_version = REGISTRY_SCHEMA_VERSION + 1;
    std::fs::write(&path, format!("{}\n", newer.to_json())).expect("write");
    let err = History::load(&path).expect_err("newer schema must refuse to load");
    assert!(err.contains("newer"), "{err}");
    assert!(err.contains(":1:"), "error names the line: {err}");

    // Malformed lines are a hard error naming the line number.
    std::fs::write(&path, "{\"schema_version\": true}\n").expect("write");
    assert!(History::load(&path).is_err());
    std::fs::remove_file(&path).ok();
}

#[test]
fn planted_twenty_percent_slowdown_fails_check() {
    let mut records: Vec<BenchRecord> = [100.0, 101.0, 99.5, 100.5, 100.0]
        .iter()
        .enumerate()
        .map(|(i, &v)| record("replay_codec", v, 0.5, i as u64))
        .collect();
    records.push(record("replay_codec", 80.0, 0.5, 10));
    let history = History {
        path: PathBuf::from("synthetic"),
        records,
        outdated: Vec::new(),
    };
    let report = history.check(&NoisePolicy::default());
    assert!(report.failed(), "20% slowdown must trip the gate");
    let line = report.regressions()[0];
    assert_eq!(line.status, CheckStatus::Regressed);
    let rendered = line.render();
    // One-line diagnostic naming case, metric, baseline, observed.
    assert!(!rendered.contains('\n'));
    assert!(rendered.contains("replay_codec.decode_mb_per_sec"));
    assert!(rendered.contains("baseline 100"));
    assert!(rendered.contains("observed 80"));
}

#[test]
fn stable_history_within_noise_passes() {
    let records: Vec<BenchRecord> = [100.0, 101.0, 99.5, 100.5, 100.0, 99.2]
        .iter()
        .enumerate()
        .map(|(i, &v)| record("replay_codec", v, 0.8, i as u64))
        .collect();
    let history = History {
        path: PathBuf::from("synthetic"),
        records,
        outdated: Vec::new(),
    };
    let report = history.check(&NoisePolicy::default());
    assert!(!report.failed());
    assert!(report
        .lines
        .iter()
        .all(|l| l.status == CheckStatus::Ok || l.status == CheckStatus::Improved));
}

#[test]
fn short_history_passes_with_no_baseline_note() {
    // Empty history: nothing to check, and no panic.
    let empty = History::default();
    let report = empty.check(&NoisePolicy::default());
    assert!(!report.failed());
    assert!(report.lines.is_empty());

    // A single record has no baseline: the check passes with a note,
    // it does not crash or fail.
    let history = History {
        path: PathBuf::from("synthetic"),
        records: vec![record("replay_codec", 140.0, 2.0, 0)],
        outdated: Vec::new(),
    };
    let report = history.check(&NoisePolicy::default());
    assert!(!report.failed());
    assert_eq!(report.lines.len(), 1);
    assert_eq!(report.lines[0].status, CheckStatus::NoBaseline);
    assert!(report.lines[0].render().contains("no baseline"));
}

#[test]
fn committed_seed_history_parses_and_passes() {
    // The fixture CI seeds its bench_history.jsonl from. Its host
    // fingerprint is deliberately fake (arch "seed64"), so real runs
    // appended after it form their own baseline groups and are never
    // gated against seed numbers.
    let path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/data/bench_history_seed.jsonl");
    let history = History::load(&path).expect("seed fixture parses");
    assert!(
        history.records.len() >= 6,
        "seed should carry a few records per case"
    );
    assert_eq!(
        history.outdated.len(),
        1,
        "seed carries one older-schema line to exercise the set-aside path"
    );
    for rec in &history.records {
        assert_eq!(
            rec.host.arch, "seed64",
            "seed host must never match a real one"
        );
    }
    let report = history.check(&NoisePolicy::default());
    assert!(
        !report.failed(),
        "the committed seed must pass its own gate:\n{}",
        report.render()
    );
}
