//! Integration: design-space sweeps are a pure refactoring of N
//! standalone replays — never a different answer, only a cheaper one.
//!
//! Three contracts, per ISSUE 7:
//! (a) every grid cell's report is byte-identical to a standalone
//!     `agave replay --cache <cell-geometry>` of the same trace;
//! (b) sweep output is independent of `--jobs`;
//! (c) the served `SWEEP` verb returns byte-identical JSON to a local
//!     `agave sweep --json`.

use agave_analysis::{sweep_path, GridSpec};
use agave_core::{all_workloads, record, HierarchyGeometry, SuiteConfig, Workload};
use agave_serve::{Client, ClientError, ServeConfig, Server};
use std::path::{Path, PathBuf};

fn find(label: &str) -> Workload {
    all_workloads()
        .into_iter()
        .find(|w| w.label() == label)
        .unwrap_or_else(|| panic!("workload {label} missing"))
}

fn record_trace(tag: &str, label: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "agave-sweep-it-{tag}-{}-{label}.agtrace",
        std::process::id()
    ));
    record::record_workload(find(label), &SuiteConfig::quick(), &path).unwrap();
    path
}

#[test]
fn every_sweep_cell_matches_a_standalone_replay() {
    let path = record_trace("cells", "countdown.main");
    let grid = GridSpec::parse("size=8k,16k:assoc=2,4:line=32,64").unwrap();
    let sweep = sweep_path(&path, &grid, 0).unwrap();
    assert_eq!(sweep.cells.len(), 8);
    let sweep_json = sweep.to_json();
    for cell in &sweep.cells {
        // The cell's canonical name resolves to the identical geometry,
        // so the standalone replay is exactly what `agave replay
        // --cache <name> --json` would print.
        let geometry = HierarchyGeometry::by_name(cell.name())
            .unwrap_or_else(|e| panic!("cell name must round-trip: {e}"));
        let standalone = record::replay_trace_cache(&path, geometry, 1).unwrap();
        assert_eq!(
            cell.report,
            standalone,
            "{}: sweep cell diverged from standalone replay",
            cell.name()
        );
        assert_eq!(cell.report.to_json(), standalone.to_json());
        assert!(
            sweep_json.contains(&standalone.to_json()),
            "{}: sweep JSON must embed the standalone report verbatim",
            cell.name()
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn sweep_output_is_independent_of_jobs() {
    let path = record_trace("jobs", "999.specrand");
    let grid = GridSpec::parse("size=4k,8k:assoc=2:line=32").unwrap();
    let serial = sweep_path(&path, &grid, 1).unwrap();
    let parallel = sweep_path(&path, &grid, 4).unwrap();
    assert_eq!(serial, parallel, "jobs=1 vs jobs=4 must be identical");
    assert_eq!(serial.to_json(), parallel.to_json());
    assert_eq!(serial.render(), parallel.render());
    std::fs::remove_file(&path).ok();
}

#[test]
fn served_sweep_is_byte_identical_to_local_sweep() {
    let path = record_trace("served", "countdown.main");
    let grid_spec = "size=8k,16k:assoc=2:line=32";
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        jobs: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.local_addr().to_string();
    std::thread::scope(|scope| {
        let daemon = scope.spawn(|| server.run());
        let client = Client::new(addr.clone());
        client.upload("swept", &path).unwrap();

        let served = client.sweep("swept", grid_spec).unwrap();
        let grid = GridSpec::parse(grid_spec).unwrap();
        // Local runs with a different job count than the server's —
        // byte-identity across the wire *and* across parallelism.
        let local = sweep_path(Path::new(&path), &grid, 4).unwrap().to_json();
        assert_eq!(served, local, "served SWEEP diverged from local sweep");

        let err = client
            .sweep("swept", "size=16k:assoc=3:line=32")
            .unwrap_err();
        assert!(
            matches!(&err, ClientError::Server(m) if m.contains("power")),
            "bad cell must name the constraint, got {err}"
        );
        let err = client.sweep("missing", grid_spec).unwrap_err();
        assert!(matches!(err, ClientError::Server(_)), "got {err}");

        client.shutdown().unwrap();
        daemon.join().unwrap();
    });
    std::fs::remove_file(&path).ok();
}
