//! Integration tests for the `agave-telemetry` self-profiler: histogram
//! bucket-boundary properties, span-tree determinism under the parallel
//! suite runner, and the byte-identity contract (telemetry never changes
//! analysis output).
//!
//! Tests that toggle the process-global telemetry enable flag serialize
//! on [`LOCK`]; metric registrations use test-unique names so they never
//! collide with instrumentation or each other.

use agave_core::engine::{self, EngineConfig};
use agave_core::{AppId, SpecProgram, SuiteResults, Workload};
use agave_telemetry::metrics::Histogram;
use agave_trace::XorShift64;
use std::sync::Mutex;

/// Serializes the tests that flip the global telemetry enable flag.
static LOCK: Mutex<()> = Mutex::new(());

fn subset() -> [Workload; 3] {
    [
        Workload::Agave(AppId::CountdownMain),
        Workload::Agave(AppId::JetboyMain),
        Workload::Spec(SpecProgram::Specrand),
    ]
}

#[test]
fn histogram_buckets_cover_powers_of_two_and_neighbors() {
    // Exhaustive at the boundaries, then randomized inside buckets.
    assert_eq!(Histogram::bucket_of(0), 0);
    assert_eq!(Histogram::bucket_of(1), 1);
    assert_eq!(Histogram::bucket_of(u64::MAX), 64);
    for e in 0..64u32 {
        let p = 1u64 << e;
        let b = Histogram::bucket_of(p);
        assert_eq!(b, e as usize + 1, "2^{e} lands in bucket e+1");
        assert_eq!(Histogram::bucket_lo(b), p, "2^{e} opens its bucket");
        if e > 0 {
            assert_eq!(
                Histogram::bucket_of(p - 1),
                e as usize,
                "2^{e}-1 stays in the previous bucket"
            );
            assert_eq!(Histogram::bucket_hi(e as usize), p - 1);
        }
        if p < u64::MAX {
            let b_up = Histogram::bucket_of(p + 1);
            assert_eq!(b_up, if e == 0 { 2 } else { b }, "2^{e}+1");
        }
    }

    // Randomized containment: every value sits inside its bucket's
    // [lo, hi] range, and the aggregated counts/sums reconcile.
    let mut rng = XorShift64::new(0x7E1E_A9E7);
    let h = agave_telemetry::metrics::histogram("test.integration.bucket_props");
    let mut expected_count = 0u64;
    let mut expected_sum = 0u64;
    for _ in 0..4_000 {
        let e = rng.below(64) as u32;
        let v = (1u64 << e).saturating_add(rng.below(3)).saturating_sub(1);
        let b = Histogram::bucket_of(v);
        assert!(
            Histogram::bucket_lo(b) <= v && v <= Histogram::bucket_hi(b),
            "{v} outside bucket {b} [{}, {}]",
            Histogram::bucket_lo(b),
            Histogram::bucket_hi(b)
        );
        h.record(v);
        expected_count += 1;
        expected_sum = expected_sum.wrapping_add(v);
    }
    let data = h.data("test.integration.bucket_props");
    assert_eq!(data.count, expected_count);
    assert_eq!(data.sum, expected_sum);
    assert_eq!(
        data.buckets.iter().map(|(_, c)| c).sum::<u64>(),
        expected_count,
        "bucket counts must sum to the sample count"
    );
}

/// Runs the subset suite under telemetry and returns the ordered
/// (label, order) sequence of per-workload "run" spans plus the suite
/// span's wall and the sum of the run spans' walls.
fn span_tree_profile(jobs: usize) -> (Vec<(String, u64)>, u64, u64) {
    agave_telemetry::take_spans();
    agave_telemetry::set_enabled(true);
    let _ = engine::run_suite_parallel(&subset(), &EngineConfig::quick(), jobs);
    agave_telemetry::set_enabled(false);
    let spans = agave_telemetry::take_spans();
    let suite = spans
        .iter()
        .find(|s| s.name == "suite")
        .expect("suite span present");
    let mut runs: Vec<_> = spans
        .iter()
        .filter(|s| s.name == "run" && s.parent == suite.id)
        .collect();
    runs.sort_by_key(|s| (s.order, s.start_ns, s.id));
    for run in &runs {
        assert!(run.refs > 0, "{}: run span must carry refs", run.label);
        assert!(
            spans.iter().any(|s| s.name == "boot" && s.parent == run.id),
            "{}: boot span must nest under the run span",
            run.label
        );
    }
    let walls = runs.iter().map(|s| s.wall_ns()).sum();
    let seq = runs.iter().map(|s| (s.label.clone(), s.order)).collect();
    (seq, suite.wall_ns(), walls)
}

#[test]
fn span_tree_is_deterministic_under_parallel_map() {
    let _guard = LOCK.lock().unwrap();
    let (serial, serial_suite_wall, serial_run_walls) = span_tree_profile(1);
    let (parallel, _, _) = span_tree_profile(3);
    let expected: Vec<(String, u64)> = subset()
        .iter()
        .enumerate()
        .map(|(i, w)| (w.label().to_string(), i as u64 + 1))
        .collect();
    assert_eq!(serial, expected, "serial span order follows input order");
    assert_eq!(parallel, expected, "jobs=3 span order matches serial");

    // On the serial path the suite span is exactly the workloads plus
    // scheduling slack: per-run walls must sum to (almost all of) it.
    assert!(
        serial_run_walls <= serial_suite_wall,
        "children cannot outlast their parent: {serial_run_walls} > {serial_suite_wall}"
    );
    assert!(
        serial_suite_wall < serial_run_walls * 2 + 20_000_000,
        "suite span wall {serial_suite_wall} is not explained by its runs {serial_run_walls}"
    );
}

#[test]
fn disabled_telemetry_keeps_suite_json_byte_identical() {
    let _guard = LOCK.lock().unwrap();
    let config = EngineConfig::quick();
    let run_json =
        || SuiteResults::from_outcomes(engine::run_suite_parallel(&subset(), &config, 2)).to_json();
    assert!(!agave_telemetry::enabled());
    let off = run_json();
    agave_telemetry::set_enabled(true);
    let on = run_json();
    agave_telemetry::set_enabled(false);
    agave_telemetry::take_spans();
    assert_eq!(off, on, "telemetry must never leak into analysis output");

    // The enabled run must also have metered itself: sink-less suite
    // runs still feed the engine.* metrics (the prom/stats exports would
    // otherwise be empty for the most common CLI paths).
    let metrics = agave_telemetry::metrics::scrape();
    let counter = |name: &str| {
        metrics
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    };
    assert!(counter("engine.runs") >= 3, "engine.runs counts workloads");
    assert!(counter("engine.refs") > 0, "engine.refs sums references");
    assert!(
        metrics
            .histograms
            .iter()
            .any(|h| h.name == "engine.run_wall_ns" && h.count >= 3),
        "engine.run_wall_ns histogram sampled per run"
    );
}
