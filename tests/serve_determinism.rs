//! Integration: the `agave-serve` daemon under concurrent multi-tenant
//! load must produce analysis responses **byte-identical** to local
//! `agave replay` — the served path is the recorded-trace contract,
//! just reached over a socket.
//!
//! One daemon on an ephemeral port; several client threads each record
//! an app or SPEC workload, upload it, and compare the served summary
//! and cache-report JSON against the local replay of the same file.

use agave_core::{all_workloads, record, HierarchyGeometry, SuiteConfig, Workload};
use agave_serve::{Analysis, Client, ClientError, ServeConfig, Server};
use std::path::PathBuf;

fn find(label: &str) -> Workload {
    all_workloads()
        .into_iter()
        .find(|w| w.label() == label)
        .unwrap_or_else(|| panic!("workload {label} missing"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("agave-serve-it-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn concurrent_multi_tenant_analyses_are_byte_identical_to_local_replay() {
    // Two app workloads and two SPEC baselines — distinct tenants with
    // very different reference streams.
    let labels = [
        "countdown.main",
        "gallery.mp4.view",
        "999.specrand",
        "401.bzip2",
    ];
    let dir = temp_dir("tenants");
    let config = SuiteConfig::quick();

    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        jobs: 4,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.local_addr().to_string();

    std::thread::scope(|scope| {
        let daemon = scope.spawn(|| server.run());

        // A panicking assertion below must still shut the daemon down,
        // or the scope's implicit join hangs on a server that never
        // stops; the shutdown runs before the panic resumes.
        let checks = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|tenants| {
                for label in labels {
                    let addr = addr.clone();
                    let path = dir.join(format!("{label}.agtrace"));
                    let config = &config;
                    tenants.spawn(move || {
                        record::record_workload(find(label), config, &path).unwrap();
                        let client = Client::new(addr);
                        let ack = client.upload(label, &path).unwrap();
                        assert_eq!(ack.label, label);

                        // Served summary vs local replay of the same file.
                        let served = client.analyze(label, &Analysis::Summary).unwrap();
                        let local = record::replay_trace_summary(&path, 1).unwrap().to_json();
                        assert_eq!(served, local, "{label}: served summary diverged");

                        // Served cache report vs local replay through the
                        // same preset.
                        let served = client
                            .analyze(label, &Analysis::Cache("tiny".to_owned()))
                            .unwrap();
                        let geometry = HierarchyGeometry::preset("tiny").unwrap();
                        let local = record::replay_trace_cache(&path, geometry, 1)
                            .unwrap()
                            .to_json();
                        assert_eq!(served, local, "{label}: served cache report diverged");

                        // The sketch is served JSON too; spot-check its exact
                        // totals against the upload acknowledgment.
                        let sketch = client.analyze(label, &Analysis::Sketch).unwrap();
                        assert!(sketch.contains(&format!("\"words\":{}", ack.words)));
                    });
                }
            });

            let client = Client::new(addr.clone());
            let listed = client.list().unwrap();
            let mut names: Vec<&str> = labels.to_vec();
            names.sort_unstable();
            assert_eq!(
                listed.iter().map(|s| s.name.as_str()).collect::<Vec<_>>(),
                names,
                "every tenant's session must be listed, sorted"
            );

            // An unknown preset errors without disturbing the server.
            let err = client
                .analyze(labels[0], &Analysis::Cache("no-such-preset".to_owned()))
                .unwrap_err();
            assert!(matches!(err, ClientError::Server(_)), "got {err}");
            listed
        }));

        let client = Client::new(addr.clone());
        client.shutdown().unwrap();
        let stats = daemon.join().unwrap();
        let listed = match checks {
            Ok(listed) => listed,
            Err(panic) => std::panic::resume_unwind(panic),
        };
        assert_eq!(stats.uploads, labels.len() as u64);
        assert!(stats.analyses >= 3 * labels.len() as u64);
        assert_eq!(
            stats.bytes_ingested,
            listed.iter().map(|s| s.file_bytes).sum::<u64>()
        );
    });
    std::fs::remove_dir_all(&dir).ok();
}
