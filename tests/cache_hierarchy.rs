//! Memory-hierarchy integration: the cache subsystem wired through the
//! full stack, and the headline locality claim — Android's multi-library
//! instruction stream caches worse than any single-binary SPEC baseline.

use agave_core::{
    all_workloads, run_workload_with_cache, AppId, Fig5Cache, HierarchyGeometry, Level,
    SpecProgram, SuiteConfig, Workload,
};

fn quick() -> SuiteConfig {
    SuiteConfig::quick()
}

#[test]
fn android_l1i_locality_is_worse_than_every_spec_kernel() {
    // The paper's structural observation (dozens of interleaved code
    // regions vs one hot binary) must show up as a cache-locality gap
    // under a realistic geometry.
    let fig5 = Fig5Cache::run(&quick(), HierarchyGeometry::cortex_a9());
    assert_eq!(fig5.rows.len(), 25);

    let android = fig5.android_aggregate(Level::L1i);
    assert!(android.accesses() > 0, "no Android instruction traffic");
    let android_miss = android.miss_rate();

    let spec: Vec<_> = fig5.spec_rows().collect();
    assert_eq!(spec.len(), 6);
    for row in spec {
        let spec_miss = row.total(Level::L1i).miss_rate();
        assert!(
            android_miss > spec_miss,
            "{}: SPEC L1I miss {:.4}% ≥ Android aggregate {:.4}%",
            row.benchmark,
            spec_miss * 100.0,
            android_miss * 100.0
        );
    }
}

#[test]
fn spec_kernels_touch_few_code_regions_android_touches_many() {
    let fig5 = Fig5Cache::run_workloads(
        &[
            Workload::Agave(AppId::CountdownMain),
            Workload::Spec(SpecProgram::Bzip2),
        ],
        &quick(),
        HierarchyGeometry::cortex_a9(),
    );
    assert!(fig5.rows[0].code_regions > 30, "{:?}", fig5.rows[0]);
    assert!(fig5.rows[1].code_regions <= 5, "{:?}", fig5.rows[1]);
}

#[test]
fn cache_reports_are_deterministic_across_runs() {
    let run = |w| run_workload_with_cache(w, &quick(), HierarchyGeometry::cortex_a9());
    for workload in [
        Workload::Agave(AppId::GalleryMp4View),
        Workload::Spec(SpecProgram::Specrand),
    ] {
        let a = run(workload);
        let b = run(workload);
        assert_eq!(a, b, "{workload:?}: cache report not reproducible");
    }
}

#[test]
fn per_region_breakdown_covers_known_hot_regions() {
    let report = run_workload_with_cache(
        Workload::Agave(AppId::CountdownMain),
        &quick(),
        HierarchyGeometry::cortex_a9(),
    );
    // The suite's leading instruction regions must appear with traffic.
    for region in ["mspace", "libdvm.so"] {
        let row = report.region(region).unwrap_or_else(|| {
            panic!("{region} missing from cache report");
        });
        assert!(row.level(Level::L1i).accesses() > 0, "{region}: no fetches");
    }
    // Conservation: per-region L1 traffic sums to the totals.
    for level in [Level::L1i, Level::L1d] {
        let sum: u64 = report
            .regions
            .iter()
            .map(|r| r.level(level).accesses())
            .sum();
        assert_eq!(
            sum,
            report.total(level).accesses(),
            "{level:?} not conserved"
        );
    }
    // Render and JSON both carry the per-region rows.
    assert!(report.render(8).contains("mspace"));
    assert!(report.to_json().contains(r#""region":"mspace""#));
}

#[test]
fn presets_change_measured_miss_rates() {
    let workload = Workload::Agave(AppId::CountdownMain);
    let big = run_workload_with_cache(workload, &quick(), HierarchyGeometry::cortex_a9());
    let tiny = run_workload_with_cache(workload, &quick(), HierarchyGeometry::tiny());
    // Same stream, smaller caches: strictly more L1I misses.
    assert_eq!(
        big.total(Level::L1i).accesses(),
        tiny.total(Level::L1i).accesses(),
        "access counts must not depend on geometry"
    );
    assert!(
        tiny.total(Level::L1i).misses > big.total(Level::L1i).misses,
        "tiny geometry should miss more ({} vs {})",
        tiny.total(Level::L1i).misses,
        big.total(Level::L1i).misses
    );
}

#[test]
fn attaching_a_sink_does_not_change_the_summary() {
    // The observer must be passive: reference counts with and without a
    // cache sink attached are identical.
    let with = {
        let sink = std::rc::Rc::new(std::cell::RefCell::new(agave_core::MemoryHierarchy::new(
            HierarchyGeometry::tiny(),
        )));
        agave_core::engine::run_observed(
            Workload::Agave(AppId::CountdownMain),
            &quick(),
            vec![sink],
        )
        .summary
    };
    let without = agave_core::run_workload(Workload::Agave(AppId::CountdownMain), &quick());
    assert_eq!(with, without);
}

#[test]
fn every_workload_produces_cache_traffic() {
    for workload in all_workloads() {
        let report = run_workload_with_cache(workload, &quick(), HierarchyGeometry::tiny());
        assert!(
            report.total(Level::L1i).accesses() > 0,
            "{workload}: no instruction traffic reached the hierarchy"
        );
        assert!(
            report.total(Level::L1d).accesses() > 0,
            "{workload}: no data traffic reached the hierarchy"
        );
    }
}
