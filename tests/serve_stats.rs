//! Integration: live daemon introspection over a real socket — the
//! `STATS` wire verb, request-scoped tracing, and the flight recorder.
//!
//! The contracts under test:
//!
//! * `STATS` is **invisible to itself**: two scrapes with no traffic
//!   between them return byte-identical JSON, so monitoring never
//!   perturbs what it measures.
//! * Client-stamped request ids and origin tags round-trip through the
//!   wire meta into `STATS --recent` flight records.
//! * Per-verb latency histograms, the queue-wait histogram, and the
//!   Prometheus exposition all populate from real request traffic.
//!
//! The metrics registry is process-global, so every test serializes on
//! one mutex and resets the registry before touching a daemon.

use agave_replay::TraceWriter;
use agave_serve::{
    Analysis, Client, ClientError, RecentFilter, ServeConfig, Server, StatsFormat, StatsSample,
};
use agave_trace::{RefKind, SharedSink, Tracer};
use std::cell::RefCell;
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::Mutex;

static REGISTRY_LOCK: Mutex<()> = Mutex::new(());

/// Serializes a test against the process-global metrics registry and
/// starts it from a clean slate.
fn serialized<T>(test: impl FnOnce() -> T) -> T {
    let _guard = REGISTRY_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    agave_telemetry::metrics::reset_metrics();
    test()
}

/// Records a tiny deterministic workload to a trace file under `dir`.
fn record_fixture(dir: &std::path::Path, stem: &str) -> PathBuf {
    let path = dir.join(format!("{stem}.agtrace"));
    let mut t = Tracer::new();
    let pid = t.register_process("app_process");
    let tid = t.register_thread(pid, "main");
    let code = t.intern_region("[app].text");
    let heap = t.intern_region("[heap]");
    let baseline = t.counter_snapshot();
    let writer = Rc::new(RefCell::new(TraceWriter::create(&path, stem).unwrap()));
    t.add_sink(writer.clone() as SharedSink);
    for i in 0..5000u64 {
        t.charge_at(pid, tid, code, RefKind::InstrFetch, 0x1000 + 4 * i, 1);
        if i % 3 == 0 {
            t.charge_at(pid, tid, heap, RefKind::DataRead, 0x8000_0000 + 8 * i, 2);
        }
    }
    t.flush_sinks();
    writer
        .borrow_mut()
        .finish(&t.name_directory(), &baseline)
        .unwrap();
    path
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("agave-stats-it-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs `test` against a live daemon that has one uploaded session
/// (`sess`) and one completed summary analysis, then shuts it down.
///
/// The daemon is shut down even when the test body panics: the scoped
/// daemon thread is joined on unwind, so a panicking test that skipped
/// SHUTDOWN would otherwise deadlock the whole test binary waiting on
/// a server that never stops.
fn with_warm_daemon<T>(tag: &str, test: impl FnOnce(&Client) -> T) -> T {
    let dir = temp_dir(tag);
    let trace = record_fixture(&dir, "fixture");
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        jobs: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.local_addr().to_string();
    let out = std::thread::scope(|scope| {
        let daemon = scope.spawn(|| server.run());
        let client = Client::with_origin(addr.clone(), "it-test");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            client.upload("sess", &trace).unwrap();
            client.analyze("sess", &Analysis::Summary).unwrap();
            test(&client)
        }));
        client.shutdown().unwrap();
        daemon.join().unwrap();
        match result {
            Ok(out) => out,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    });
    std::fs::remove_dir_all(&dir).ok();
    out
}

#[test]
fn idle_stats_json_is_byte_stable_across_scrapes() {
    serialized(|| {
        with_warm_daemon("stable", |client| {
            let first = client
                .stats(StatsFormat::Json, 8, RecentFilter::All)
                .unwrap();
            let second = client
                .stats(StatsFormat::Json, 8, RecentFilter::All)
                .unwrap();
            assert_eq!(
                first, second,
                "a STATS scrape must not perturb the next scrape"
            );
            let sample = StatsSample::parse(&first).unwrap();
            assert!(sample.counters["serve.uploads"] >= 1, "{first}");
            assert!(sample.counters["serve.analyses"] >= 1, "{first}");
            assert!(sample.counters["serve.requests"] >= 2, "{first}");
        });
    });
}

#[test]
fn request_ids_and_origins_round_trip_into_flight_records() {
    serialized(|| {
        with_warm_daemon("roundtrip", |client| {
            let body = client
                .stats(StatsFormat::Json, 16, RecentFilter::All)
                .unwrap();
            let sample = StatsSample::parse(&body).unwrap();
            assert!(!sample.recent.is_empty(), "{body}");
            let verbs: Vec<&str> = sample.recent.iter().map(|r| r.verb.as_str()).collect();
            assert!(verbs.contains(&"upload"), "{verbs:?}");
            assert!(verbs.contains(&"analyze"), "{verbs:?}");
            let mut ids = Vec::new();
            for r in &sample.recent {
                assert_eq!(r.origin, "it-test", "{body}");
                assert_eq!(r.outcome, "ok", "{body}");
                assert_ne!(r.id, 0, "request ids are nonzero");
                ids.push(r.id);
            }
            let mut dedup = ids.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), ids.len(), "request ids are unique: {ids:?}");
            // Newest first: recorder sequence numbers strictly descend.
            for pair in sample.recent.windows(2) {
                assert!(pair[0].seq > pair[1].seq, "{body}");
            }
        });
    });
}

#[test]
fn error_requests_are_filterable_from_the_flight_window() {
    serialized(|| {
        with_warm_daemon("errors", |client| {
            let err = client.analyze("no-such-session", &Analysis::Summary);
            assert!(matches!(err, Err(ClientError::Server(_))), "{err:?}");
            let body = client
                .stats(StatsFormat::Json, 16, RecentFilter::Errors)
                .unwrap();
            let sample = StatsSample::parse(&body).unwrap();
            assert!(!sample.recent.is_empty(), "{body}");
            for r in &sample.recent {
                assert_eq!(r.outcome, "error", "{body}");
            }
        });
    });
}

#[test]
fn latency_and_queue_wait_histograms_populate_from_traffic() {
    serialized(|| {
        with_warm_daemon("hist", |client| {
            let body = client
                .stats(StatsFormat::Json, 0, RecentFilter::All)
                .unwrap();
            let sample = StatsSample::parse(&body).unwrap();
            for name in [
                "serve.latency.upload",
                "serve.latency.analyze",
                "serve.queue_wait",
            ] {
                let h = sample
                    .histograms
                    .iter()
                    .find(|h| h.name == name)
                    .unwrap_or_else(|| panic!("{name} missing from {body}"));
                assert!(h.count >= 1, "{name} never recorded: {body}");
            }
        });
    });
}

#[test]
fn prometheus_format_exposes_the_serve_metrics() {
    serialized(|| {
        with_warm_daemon("prom", |client| {
            let prom = client
                .stats(StatsFormat::Prom, 0, RecentFilter::All)
                .unwrap();
            for needle in [
                "# TYPE agave_serve_uploads counter",
                "agave_serve_uploads 1",
                "agave_serve_analyses",
                "agave_serve_requests",
                "agave_serve_latency_analyze_count",
            ] {
                assert!(prom.contains(needle), "{needle:?} missing from:\n{prom}");
            }
        });
    });
}
