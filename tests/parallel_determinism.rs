//! The parallel suite contract: fanning the 25 workloads out across
//! threads changes wall time and nothing else. Archived JSON, figures,
//! and per-workload summaries must be byte-identical to the serial path.

use agave_core::engine::{self, EngineConfig};
use agave_core::{all_workloads, Experiments, SuiteConfig, SuiteResults, WorkloadEngine};

#[test]
fn parallel_suite_json_is_byte_identical_to_serial() {
    let config = SuiteConfig::quick();
    let serial = agave_core::run_suite(&config);
    let parallel = agave_core::run_suite_jobs(&config, 4);
    assert_eq!(
        serial.to_json(),
        parallel.to_json(),
        "jobs=4 JSON diverged from the serial suite"
    );
    // Figure artifacts assembled from the results are identical too.
    let serial_ex = Experiments::new(serial);
    let parallel_ex = Experiments::new(parallel);
    assert_eq!(serial_ex.figure1().to_csv(), parallel_ex.figure1().to_csv());
    assert_eq!(serial_ex.table1().render(), parallel_ex.table1().render());
}

#[test]
fn outcomes_come_back_in_canonical_order_for_any_jobs() {
    let workloads = all_workloads();
    let config = EngineConfig::quick();
    // More jobs than workloads, plus jobs=0 (auto) both preserve order.
    for jobs in [0, 3, 64] {
        let outcomes = engine::run_suite_parallel(&workloads[..5], &config, jobs);
        let labels: Vec<&str> = outcomes.iter().map(|o| o.workload.label()).collect();
        let expected: Vec<&str> = workloads[..5].iter().map(|w| w.label()).collect();
        assert_eq!(labels, expected, "jobs={jobs}");
    }
}

#[test]
fn engine_suite_partitions_like_the_legacy_runner() {
    let engine = WorkloadEngine::new(EngineConfig::quick());
    let results: SuiteResults = engine.run_suite_parallel(2);
    assert_eq!(results.agave.len(), 19);
    assert_eq!(results.spec.len(), 6);
    assert_eq!(results.agave[0].benchmark, "aard.main");
    assert_eq!(results.spec[0].benchmark, "401.bzip2");
    // Every run carries host-timing metadata for the throughput columns.
    for s in results.all() {
        assert!(s.wall_time_ns > 0, "{}: wall time not stamped", s.benchmark);
        assert!(s.refs_per_sec() > 0.0, "{}: no throughput", s.benchmark);
    }
    // ... which never leaks into archived artifacts.
    assert!(!results.to_json().contains("wall_time"));
    // The human-readable timing table covers all 25 rows plus the total.
    let timing = results.render_timing();
    assert_eq!(timing.lines().count(), 2 + 25 + 1);
    assert!(timing.contains("suite total"));
}
