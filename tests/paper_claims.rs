//! The headline reproduction test: run the full suite (quick sizing) and
//! check every quantitative claim of the paper.
//!
//! This is the executable version of EXPERIMENTS.md.

use agave_core::{Experiments, SuiteConfig};

/// One full quick-suite pass shared by the assertions below.
fn experiments() -> Experiments {
    Experiments::from_config(&SuiteConfig::quick())
}

#[test]
fn all_paper_claims_hold() {
    let ex = experiments();
    let claims = ex.check_claims();
    let failures: Vec<String> = claims
        .iter()
        .filter(|c| !c.pass)
        .map(|c| format!("{}: paper {} vs measured {}", c.id, c.paper, c.measured))
        .collect();
    assert!(
        failures.is_empty(),
        "{} claim(s) out of band:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn table1_reproduces_the_thread_ranking() {
    let ex = experiments();
    let table = ex.table1_extended(24);
    // Rank 1 is SurfaceFlinger, in the paper's band.
    assert_eq!(ex.table1().rows()[0].thread, "SurfaceFlinger");
    let sf = table.percent("SurfaceFlinger");
    assert!((30.0..=55.0).contains(&sf), "SurfaceFlinger {sf:.1}%");
    // The other five paper families all contribute materially.
    for family in ["Thread", "AsyncTask", "Compiler", "AudioTrackThread", "GC"] {
        let pct = table.percent(family);
        assert!(pct >= 1.5, "{family} at {pct:.1}% (paper: 5.3–8.0%)");
    }
}

#[test]
fn figures_have_the_paper_legends() {
    let ex = experiments();
    let fig1 = ex.figure1();
    // The paper's named instruction regions all surface in our top-9.
    for name in [
        "mspace",
        "libdvm.so",
        "libskia.so",
        "OS kernel",
        "app binary",
    ] {
        assert!(
            fig1.legend().iter().any(|l| l == name),
            "figure 1 legend missing {name}: {:?}",
            fig1.legend()
        );
    }
    let fig2 = ex.figure2();
    for name in [
        "stack",
        "OS kernel",
        "gralloc-buffer",
        "dalvik-heap",
        "fb0 (frame buffer)",
    ] {
        assert!(
            fig2.legend().iter().any(|l| l == name),
            "figure 2 legend missing {name}: {:?}",
            fig2.legend()
        );
    }
    let fig3 = ex.figure3();
    for name in ["benchmark", "system_server", "mediaserver"] {
        assert!(
            fig3.legend().iter().any(|l| l == name),
            "figure 3 legend missing {name}: {:?}",
            fig3.legend()
        );
    }
}

#[test]
fn spec_columns_look_like_spec() {
    let ex = experiments();
    for spec in &ex.results().spec {
        // Single-digit region counts vs the Android side's dozens.
        assert!(
            spec.code_region_count() <= 8,
            "{}: {} code regions",
            spec.benchmark,
            spec.code_region_count()
        );
        assert!(
            spec.instr_region_share("app binary") > 0.5,
            "{}: binary share {:.2}",
            spec.benchmark,
            spec.instr_region_share("app binary")
        );
    }
    // And the Agave side is nothing like that.
    for app in &ex.results().agave {
        assert!(
            app.code_region_count() >= 40,
            "{}: only {} code regions",
            app.benchmark,
            app.code_region_count()
        );
    }
}

#[test]
fn media_architectures_contrast() {
    let ex = experiments();
    let gallery = ex.results().by_label("gallery.mp4.view").unwrap();
    let vlc = ex.results().by_label("vlc.mp4.view").unwrap();
    // Framework playback decodes in mediaserver; VLC decodes in-process.
    assert!(gallery.instr_process_share("mediaserver") > 0.55);
    assert!(vlc.instr_process_share("benchmark") > 0.5);
    assert!(
        gallery.instr_process_share("benchmark") < 0.1,
        "gallery app should be nearly idle"
    );
}
