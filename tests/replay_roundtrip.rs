//! End-to-end contract of the `agave-replay` subsystem: a recorded
//! `.agtrace` file replays into **byte-identical** analysis output —
//! the same `RunSummary` JSON and the same `CacheReport` the live run
//! produces — and corrupt or truncated files fail with a descriptive
//! error instead of being silently misread.

use agave_core::{
    engine, record, run_workload_with_cache, AppId, HierarchyGeometry, SpecProgram, SuiteConfig,
    Workload,
};
use agave_replay::TraceError;
use std::path::PathBuf;

fn quick() -> SuiteConfig {
    SuiteConfig::quick()
}

fn temp_trace(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "agave-roundtrip-{}-{name}.agtrace",
        std::process::id()
    ));
    p
}

/// Records `workload`, replays it, and checks both analysis paths are
/// byte-identical to the live run. Returns the trace bytes for reuse.
fn assert_round_trip(workload: Workload, name: &str) -> Vec<u8> {
    let path = temp_trace(name);
    let config = quick();

    let stats = record::record_workload(workload, &config, &path).expect("record");
    assert!(stats.records > 0, "{name}: empty recording");
    assert!(
        stats.bytes_per_record() < 8.0,
        "{name}: {:.2} bytes/record exceeds the compression budget",
        stats.bytes_per_record()
    );

    // Summary path: identical struct (wall time excluded by PartialEq)
    // and identical serialized JSON — for every decode job count, since
    // the parallel reader must merge chunks back into program order.
    let live = engine::run(workload, &config).summary;
    for jobs in [1, 2, 8] {
        let replayed = record::replay_trace_summary(&path, jobs).expect("replay summary");
        assert_eq!(
            replayed, live,
            "{name}: replayed summary diverges (jobs={jobs})"
        );
        assert_eq!(
            replayed.to_json(),
            live.to_json(),
            "{name}: summary JSON is not byte-identical (jobs={jobs})"
        );
    }

    // Cache path: the recorded stream drives a fresh hierarchy to the
    // same report the live run produces, without re-simulating.
    let geometry = HierarchyGeometry::cortex_a9();
    let live_cache = run_workload_with_cache(workload, &config, geometry);
    for jobs in [1, 8] {
        let replayed_cache =
            record::replay_trace_cache(&path, geometry, jobs).expect("replay cache");
        assert_eq!(
            replayed_cache.to_json(),
            live_cache.to_json(),
            "{name}: cache report JSON is not byte-identical (jobs={jobs})"
        );
    }

    let bytes = std::fs::read(&path).expect("read trace back");
    std::fs::remove_file(&path).ok();
    bytes
}

#[test]
fn app_workload_round_trips_byte_identically() {
    // A full Android app run: boot traffic lands in the baseline
    // snapshot, dozens of regions/threads stress the directory tables.
    assert_round_trip(Workload::Agave(AppId::GalleryMp4View), "gallery");
}

#[test]
fn spec_workload_round_trips_byte_identically() {
    assert_round_trip(Workload::Spec(SpecProgram::Mcf), "mcf");
}

#[test]
fn corrupted_chunk_is_reported_not_misread() {
    let bytes = assert_round_trip(Workload::Spec(SpecProgram::Specrand), "corrupt-src");

    // Flip one byte in the middle of the stream — inside a record chunk
    // or its checksum, past the header.
    let mut corrupt = bytes.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x40;
    let path = temp_trace("corrupt");
    std::fs::write(&path, &corrupt).unwrap();
    let err = record::replay_trace_summary(&path, 1).expect_err("corruption must be detected");
    match &err {
        TraceError::Corrupt { what, .. } => {
            assert!(!what.is_empty(), "corruption error must say what broke")
        }
        other => panic!("expected TraceError::Corrupt, got {other:?}"),
    }
    // The message is user-facing: it should render without panicking,
    // and a parallel decode must report the *same* error (first failing
    // chunk in file order), not whichever worker lost the race.
    assert!(!err.to_string().is_empty());
    for jobs in [2, 8] {
        let parallel = record::replay_trace_summary(&path, jobs)
            .expect_err("corruption must be detected at any job count");
        assert_eq!(
            parallel.to_string(),
            err.to_string(),
            "jobs={jobs}: corruption error must be deterministic"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncated_file_is_reported_not_misread() {
    let bytes = assert_round_trip(Workload::Spec(SpecProgram::Specrand), "trunc-src");
    for cut in [bytes.len() / 3, bytes.len() - 3] {
        let path = temp_trace(&format!("trunc-{cut}"));
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let err = record::replay_trace_summary(&path, 1).expect_err("truncation must be detected");
        assert!(
            matches!(err, TraceError::Corrupt { .. }),
            "cut at {cut}: expected Corrupt, got {err:?}"
        );
        let parallel = record::replay_trace_summary(&path, 8)
            .expect_err("truncation must be detected in parallel too");
        assert_eq!(
            parallel.to_string(),
            err.to_string(),
            "cut at {cut}: truncation error must be deterministic across jobs"
        );
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn non_trace_file_is_rejected_on_open() {
    let path = temp_trace("not-a-trace");
    std::fs::write(&path, b"definitely not an agtrace file").unwrap();
    let err = record::replay_trace_summary(&path, 1).expect_err("bad magic must be rejected");
    assert!(
        matches!(err, TraceError::NotATrace),
        "expected NotATrace, got {err:?}"
    );
    std::fs::remove_file(&path).ok();
}
